#ifndef GOALEX_TENSOR_KERNELS_H_
#define GOALEX_TENSOR_KERNELS_H_

#include <cstdint>

namespace goalex::tensor {

/// Raw single-threaded float kernels shared by the autograd ops, the CRF,
/// and the classifier. All matrices are dense row-major.

/// C[m,n] (+)= A[m,k] * B[k,n]. When `accumulate` is false C is overwritten.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool accumulate);

/// C[m,k] (+)= A[m,n] * B[k,n]^T  (i.e., A times B-transposed).
void GemmTransB(const float* a, const float* b, float* c, int64_t m,
                int64_t n, int64_t k, bool accumulate);

/// C[k,n] (+)= A[m,k]^T * B[m,n]  (i.e., A-transposed times B).
void GemmTransA(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n, bool accumulate);

/// out[i] = softmax(x)[i] over n entries. Numerically stable. Entries equal
/// to kSoftmaxMask are treated as masked (probability exactly 0).
void SoftmaxRow(const float* x, float* out, int64_t n);

/// Large negative value used to mask attention logits.
inline constexpr float kSoftmaxMask = -1e30f;

/// log(sum(exp(x))) over n entries, numerically stable.
double LogSumExp(const float* x, int64_t n);

/// y += alpha * x over n entries.
void Axpy(float alpha, const float* x, float* y, int64_t n);

/// Dot product over n entries.
double Dot(const float* x, const float* y, int64_t n);

}  // namespace goalex::tensor

#endif  // GOALEX_TENSOR_KERNELS_H_
