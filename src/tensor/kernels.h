#ifndef GOALEX_TENSOR_KERNELS_H_
#define GOALEX_TENSOR_KERNELS_H_

#include <cstdint>

namespace goalex::tensor {

/// Raw single-threaded float kernels shared by the autograd ops, the CRF,
/// and the classifier. All matrices are dense row-major.

/// C[m,n] (+)= A[m,k] * B[k,n]. When `accumulate` is false C is overwritten.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool accumulate);

/// C[m,k] (+)= A[m,n] * B[k,n]^T  (i.e., A times B-transposed).
void GemmTransB(const float* a, const float* b, float* c, int64_t m,
                int64_t n, int64_t k, bool accumulate);

/// C[k,n] (+)= A[m,k]^T * B[m,n]  (i.e., A-transposed times B).
void GemmTransA(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n, bool accumulate);

/// out[i] = softmax(x)[i] over n entries. Numerically stable. Entries equal
/// to kSoftmaxMask are treated as masked (probability exactly 0).
void SoftmaxRow(const float* x, float* out, int64_t n);

/// Large negative value used to mask attention logits.
inline constexpr float kSoftmaxMask = -1e30f;

/// log(sum(exp(x))) over n entries, numerically stable.
double LogSumExp(const float* x, int64_t n);

/// y += alpha * x over n entries.
void Axpy(float alpha, const float* x, float* y, int64_t n);

/// Dot product over n entries.
double Dot(const float* x, const float* y, int64_t n);

/// dst[i] += src[i]; src[i] = 0 — the gradient-reduction primitive of the
/// data-parallel trainer. Element-wise, so any partition of [0, n) yields
/// identical bits; the caller fixes the slot order.
void AccumulateAndClear(float* dst, float* src, int64_t n);

/// Per-step constants of the fused Adam update, precomputed once per Step
/// with the bias-correction terms held in double until the final cast (see
/// nn/adam.cc).
struct AdamStepParams {
  float clip_scale = 1.0f;      ///< Global-norm clip factor applied to g.
  float step_size = 0.0f;       ///< lr / (1 - beta1^t).
  float inv_sqrt_bias2 = 1.0f;  ///< 1 / sqrt(1 - beta2^t).
  float beta1 = 0.9f;
  float one_minus_beta1 = 0.1f;
  float beta2 = 0.999f;
  float one_minus_beta2 = 0.001f;
  float eps = 1e-8f;
  float decay_scale = 0.0f;     ///< lr * weight_decay; 0 disables decay.
};

/// Fused Adam step over n elements: applies clip scaling, decoupled weight
/// decay, both moment updates, bias correction, and the weight update in a
/// single pass, then zeroes the gradient. Dispatches to the AVX2 variant
/// when compiled in; same contract as tensor/mathfn.h — the vector body and
/// the scalar tail are bit-identical lane for lane (fmaf <-> vfmadd,
/// sqrtf <-> sqrtps, div <-> divps).
void AdamFusedStep(float* w, float* g, float* m, float* v, int64_t n,
                   const AdamStepParams& params);

/// The scalar reference variant, exposed for the fused-vs-scalar parity
/// test; AdamFusedStep must produce identical bits.
void AdamFusedStepScalar(float* w, float* g, float* m, float* v, int64_t n,
                         const AdamStepParams& params);

/// Sum of g[i]^2 in double precision using four fixed accumulator lanes
/// (element i feeds lane i mod 4, combined in lane order), so the result is
/// independent of vector width: the AVX2 4-lane double FMA body and the
/// scalar variant produce identical bits.
double GradSquaredSum(const float* g, int64_t n);

/// Scalar reference for GradSquaredSum (parity-tested).
double GradSquaredSumScalar(const float* g, int64_t n);

}  // namespace goalex::tensor

#endif  // GOALEX_TENSOR_KERNELS_H_
