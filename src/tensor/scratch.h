#ifndef GOALEX_TENSOR_SCRATCH_H_
#define GOALEX_TENSOR_SCRATCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/buffer_pool.h"

namespace goalex::tensor {

/// Recycling allocator for autograd scratch tensors.
///
/// One training example builds and tears down an entire forward/backward
/// graph — dozens of op-output and gradient tensors, all short-lived and
/// identically shaped from example to example. Installing a ScratchScope
/// routes Tensor's storage allocations on the current thread through an
/// allocator whose blocks return to a freelist when the graph dies, so
/// steady-state training stops allocating per-op tensors every example.
///
/// Recycled storage is zero-filled on reuse; a pooled tensor is
/// indistinguishable from a freshly constructed one, so installing a scope
/// never changes results.
class ScratchAllocator {
 public:
  ScratchAllocator() : pool_(std::make_shared<runtime::BufferPool>()) {}

  ScratchAllocator(const ScratchAllocator&) = delete;
  ScratchAllocator& operator=(const ScratchAllocator&) = delete;

  /// Returns zero-filled storage of size `n` whose deleter recycles the
  /// block into this allocator's freelist. The deleter shares ownership of
  /// the freelist, so storage that outlives the allocator stays valid and
  /// is simply freed when the last block dies.
  std::shared_ptr<std::vector<float>> Acquire(size_t n) {
    std::vector<float>* raw = pool_->Acquire(n).release();
    std::shared_ptr<runtime::BufferPool> pool = pool_;
    return std::shared_ptr<std::vector<float>>(
        raw, [pool](std::vector<float>* p) {
          pool->Release(std::unique_ptr<std::vector<float>>(p));
        });
  }

  uint64_t reuse_count() const { return pool_->reuse_count(); }
  uint64_t alloc_count() const { return pool_->alloc_count(); }
  size_t cached_bytes() const { return pool_->cached_bytes(); }
  size_t outstanding_bytes() const { return pool_->outstanding_bytes(); }
  /// High-water cached + outstanding bytes (see BufferPool::peak_bytes).
  size_t peak_bytes() const { return pool_->peak_bytes(); }

 private:
  std::shared_ptr<runtime::BufferPool> pool_;
};

/// RAII guard: while alive, Tensor storage allocations on this thread come
/// from `allocator`. Scopes nest (the previous allocator is restored on
/// destruction); a null allocator temporarily restores plain allocation.
class ScratchScope {
 public:
  explicit ScratchScope(ScratchAllocator* allocator);
  ~ScratchScope();

  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

 private:
  ScratchAllocator* previous_;
};

/// Allocation hook used by Tensor: returns zero-filled storage of size `n`
/// from the thread's current scratch allocator, or a plain allocation when
/// no scope is installed.
std::shared_ptr<std::vector<float>> AllocateTensorStorage(size_t n);

}  // namespace goalex::tensor

#endif  // GOALEX_TENSOR_SCRATCH_H_
