#ifndef GOALEX_TENSOR_FORWARD_H_
#define GOALEX_TENSOR_FORWARD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace goalex::tensor {

/// Forward-pass math shared by the autograd ops (tensor/ops.cc) and the
/// graph-free inference engine (src/infer). Both execution strategies call
/// these exact functions, so engine outputs are bit-identical to the tape's
/// by construction — the parity tests then verify it end to end.
///
/// All buffers are dense row-major float; output buffers may be
/// uninitialized unless a function documents otherwise.

/// out[i] = a[i] + b[i] over n entries (elementwise residual add).
void AddForward(const float* a, const float* b, float* out, int64_t n);

/// Affine layer forward: out[m, out_dim] = x[m, in] * w[in, out_dim] + bias.
/// Matches the tape's MatMul-then-AddBias composition exactly (full GEMM
/// accumulation first, bias added afterwards).
void LinearForward(const float* x, const float* w, const float* bias,
                   float* out, int64_t m, int64_t in, int64_t out_dim);

/// Affine layer with the tanh-GELU epilogue fused into the output stores:
/// out = gelu(x W + bias). Bit-identical to LinearForward followed by
/// GeluForward — the accumulation chains are LinearForward's and the GELU
/// is applied to the same post-bias float it would otherwise reload.
void LinearGeluForward(const float* x, const float* w, const float* bias,
                       float* out, int64_t m, int64_t in, int64_t out_dim);

/// Affine layer with a residual add fused into the output stores:
/// out = residual + (x W + bias), residual shaped like out. Bit-identical
/// to LinearForward followed by AddForward(residual, linear_out).
void LinearResidualForward(const float* x, const float* w, const float* bias,
                           const float* residual, float* out, int64_t m,
                           int64_t in, int64_t out_dim);

/// GELU (tanh approximation), elementwise over n entries.
void GeluForward(const float* x, float* out, int64_t n);

/// Layer normalization over the last axis of x[m, n] with gain gamma[n] and
/// offset beta[n]. When `xhat` / `inv_std` are non-null (training tape),
/// the normalized activations [m, n] and per-row 1/std [m] are captured for
/// the backward pass.
void LayerNormForward(const float* x, const float* gamma, const float* beta,
                      float* out, int64_t m, int64_t n, float eps,
                      float* xhat, float* inv_std);

/// Reusable per-head scratch for AttentionForward. One instance per worker;
/// Resize is cheap once warm (vectors only grow).
struct AttentionScratch {
  std::vector<float> qa, ka, va, oa;  ///< [t, head_dim] head slices.
  std::vector<float> kat;             ///< [head_dim, t] Ka transposed.
  std::vector<float> scores;          ///< [t, t] pre-softmax logits.

  void Resize(int64_t t, int64_t head_dim) {
    size_t slice = static_cast<size_t>(t * head_dim);
    if (qa.size() < slice) {
      qa.resize(slice);
      ka.resize(slice);
      va.resize(slice);
      oa.resize(slice);
      kat.resize(slice);
    }
    size_t sq = static_cast<size_t>(t * t);
    if (scores.size() < sq) scores.resize(sq);
  }
};

/// Multi-head scaled dot-product self-attention over one sequence:
/// q, k, v, out are [t, d] with d divisible by `heads`. When `probs` is
/// non-null it receives the per-head softmax matrices, laid out
/// [heads, t, t] contiguously (captured by the tape for backward).
void AttentionForward(const float* q, const float* k, const float* v,
                      float* out, int64_t t, int64_t d, int32_t heads,
                      float* probs, AttentionScratch& scratch);

/// Token + position embedding sum: out[i, :] = token_table[ids[i], :] +
/// pos_table[i, :] for i in [0, t). Ids must be in range (CHECKed).
void EmbedSumForward(const float* token_table, int64_t vocab,
                     const float* pos_table, const int32_t* ids, int64_t t,
                     int64_t d, float* out);

/// Mean over rows: out[1, n] = mean of x[m, n] rows. Matches the tape's
/// accumulate-then-scale order exactly.
void MeanRowsForward(const float* x, float* out, int64_t m, int64_t n);

/// Argmax over one row of n entries (first maximum wins).
int32_t ArgmaxRow(const float* row, int64_t n);

}  // namespace goalex::tensor

#endif  // GOALEX_TENSOR_FORWARD_H_
