#ifndef GOALEX_TENSOR_VARIABLE_H_
#define GOALEX_TENSOR_VARIABLE_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace goalex::tensor {

class Node;

/// A differentiable value in the autograd graph. Ops return Vars; calling
/// Backward(loss) fills the .grad tensors of every reachable node that
/// requires gradients.
using Var = std::shared_ptr<Node>;

/// One node of the tape: a value, its (lazily allocated) gradient, the
/// input nodes it was computed from, and a closure that propagates this
/// node's gradient into its inputs.
class Node {
 public:
  explicit Node(Tensor value) : value_(std::move(value)) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const Tensor& value() const { return value_; }
  Tensor& mutable_value() { return value_; }

  /// Gradient tensor; zero-filled on first access.
  Tensor& grad();
  bool has_grad() const { return grad_.numel() > 0; }

  bool requires_grad() const { return requires_grad_; }
  void set_requires_grad(bool requires_grad) {
    requires_grad_ = requires_grad;
  }

  const std::vector<Var>& inputs() const { return inputs_; }
  void set_inputs(std::vector<Var> inputs) { inputs_ = std::move(inputs); }

  void set_backward_fn(std::function<void(Node&)> fn) {
    backward_fn_ = std::move(fn);
  }
  const std::function<void(Node&)>& backward_fn() const {
    return backward_fn_;
  }

  /// Clears the gradient (keeps allocation).
  void ZeroGrad();

 private:
  Tensor value_;
  Tensor grad_;
  bool requires_grad_ = false;
  std::vector<Var> inputs_;
  std::function<void(Node&)> backward_fn_;
};

/// Creates a leaf node (no inputs). Parameters are leaves with
/// requires_grad = true; constants/inputs are leaves with false.
Var Leaf(Tensor value, bool requires_grad);

/// Creates an interior node whose gradient flows to `inputs` via
/// `backward_fn`. The node requires grad iff any input does.
Var MakeOp(Tensor value, std::vector<Var> inputs,
           std::function<void(Node&)> backward_fn);

/// Runs reverse-mode accumulation from `root`, which must hold a scalar
/// (numel 1); its gradient is seeded with 1. Gradients accumulate — call
/// ZeroGrad on parameters (or use an optimizer) between steps.
void Backward(const Var& root);

}  // namespace goalex::tensor

#endif  // GOALEX_TENSOR_VARIABLE_H_
