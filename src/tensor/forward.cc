#include "tensor/forward.h"

#include <algorithm>
#include <cmath>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

#include "common/check.h"
#include "tensor/kernels.h"
#include "tensor/mathfn.h"

namespace goalex::tensor {
namespace {

/// C[m, n] = A[m, k] * B[k, n] with each output accumulated in registers
/// over k. The per-output fmaf sequence (strict k order, single rounding
/// per step, start from 0) is exactly the one kernels.cc Gemm performs, so
/// results are bit-identical — minus the store/reload latency chain that
/// bounds the memory-accumulating kernel on small n (attention head dims).
void GemmRegAcc(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n) {
#if defined(__AVX2__) && defined(__FMA__)
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    int64_t j0 = 0;
    for (; j0 + 16 <= n; j0 += 16) {
      const float* b_base = b + j0;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      for (int64_t l = 0; l < k; ++l) {
        const __m256 av = _mm256_set1_ps(a_row[l]);
        const float* b_row = b_base + l * n;
        acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b_row), acc0);
        acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b_row + 8), acc1);
      }
      _mm256_storeu_ps(c_row + j0, acc0);
      _mm256_storeu_ps(c_row + j0 + 8, acc1);
    }
    for (; j0 + 8 <= n; j0 += 8) {
      const float* b_base = b + j0;
      __m256 acc = _mm256_setzero_ps();
      for (int64_t l = 0; l < k; ++l) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(a_row[l]),
                              _mm256_loadu_ps(b_base + l * n), acc);
      }
      _mm256_storeu_ps(c_row + j0, acc);
    }
    for (; j0 < n; ++j0) {
      float acc = 0.0f;
      for (int64_t l = 0; l < k; ++l) {
        acc = std::fmaf(a_row[l], b[l * n + j0], acc);
      }
      c_row[j0] = acc;
    }
  }
#else
  Gemm(a, b, c, m, k, n, /*accumulate=*/false);
#endif
}

#if defined(__AVX2__) && defined(__FMA__)

/// LinearForward's exact 2x32 register blocking with a fused epilogue
/// applied at each output store: kEpi 0 = plain affine, 1 = tanh-GELU,
/// 2 = residual add. The k-accumulation chains are untouched (strict k
/// order, fmadd from 0, bias added once after), so each variant stays
/// bit-identical to LinearForward composed with GeluForward / AddForward —
/// the epilogue consumes the identical post-bias float it would otherwise
/// round-trip through memory.
template <int kEpi>
void LinearFusedEpi(const float* x, const float* w, const float* bias,
                    float* out, int64_t m, int64_t in, int64_t out_dim,
                    const float* residual) {
  const __m256 coef = _mm256_set1_ps(kGeluCoef);
  const __m256 cubic = _mm256_set1_ps(kGeluCubic);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);
  auto epi8 = [&](__m256 acc, const float* bias_p, const float* res_p) {
    acc = _mm256_add_ps(acc, _mm256_loadu_ps(bias_p));
    if constexpr (kEpi == 1) {
      // GeluForward's vector chain verbatim (see mathfn.h).
      const __m256 cvv = _mm256_mul_ps(_mm256_mul_ps(cubic, acc), acc);
      const __m256 u = _mm256_mul_ps(coef, _mm256_fmadd_ps(cvv, acc, acc));
      acc = _mm256_mul_ps(_mm256_mul_ps(half, acc),
                          _mm256_add_ps(one, FastTanhf8(u)));
    } else if constexpr (kEpi == 2) {
      // AddForward's operand order: residual + linear.
      acc = _mm256_add_ps(_mm256_loadu_ps(res_p), acc);
    }
    return acc;
  };
  auto epi1 = [&](float acc, float b, const float* res_p) {
    acc += b;
    if constexpr (kEpi == 1) {
      acc = (0.5f * acc) * (1.0f + FastTanhf(GeluTanhArg(acc)));
    } else if constexpr (kEpi == 2) {
      acc = *res_p + acc;
    }
    return acc;
  };
  int64_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const float* x0 = x + i * in;
    const float* x1 = x0 + in;
    float* o0 = out + i * out_dim;
    float* o1 = o0 + out_dim;
    const float* r0 = residual != nullptr ? residual + i * out_dim : nullptr;
    const float* r1 = r0 != nullptr ? r0 + out_dim : nullptr;
    int64_t j0 = 0;
    for (; j0 + 32 <= out_dim; j0 += 32) {
      const float* w_base = w + j0;
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
      __m256 b0 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
      __m256 b2 = _mm256_setzero_ps(), b3 = _mm256_setzero_ps();
      for (int64_t l = 0; l < in; ++l) {
        const __m256 xv0 = _mm256_set1_ps(x0[l]);
        const __m256 xv1 = _mm256_set1_ps(x1[l]);
        const float* w_row = w_base + l * out_dim;
        const __m256 w0v = _mm256_loadu_ps(w_row);
        const __m256 w1v = _mm256_loadu_ps(w_row + 8);
        const __m256 w2v = _mm256_loadu_ps(w_row + 16);
        const __m256 w3v = _mm256_loadu_ps(w_row + 24);
        a0 = _mm256_fmadd_ps(xv0, w0v, a0);
        a1 = _mm256_fmadd_ps(xv0, w1v, a1);
        a2 = _mm256_fmadd_ps(xv0, w2v, a2);
        a3 = _mm256_fmadd_ps(xv0, w3v, a3);
        b0 = _mm256_fmadd_ps(xv1, w0v, b0);
        b1 = _mm256_fmadd_ps(xv1, w1v, b1);
        b2 = _mm256_fmadd_ps(xv1, w2v, b2);
        b3 = _mm256_fmadd_ps(xv1, w3v, b3);
      }
      _mm256_storeu_ps(o0 + j0, epi8(a0, bias + j0, r0 ? r0 + j0 : nullptr));
      _mm256_storeu_ps(o0 + j0 + 8,
                       epi8(a1, bias + j0 + 8, r0 ? r0 + j0 + 8 : nullptr));
      _mm256_storeu_ps(o0 + j0 + 16,
                       epi8(a2, bias + j0 + 16, r0 ? r0 + j0 + 16 : nullptr));
      _mm256_storeu_ps(o0 + j0 + 24,
                       epi8(a3, bias + j0 + 24, r0 ? r0 + j0 + 24 : nullptr));
      _mm256_storeu_ps(o1 + j0, epi8(b0, bias + j0, r1 ? r1 + j0 : nullptr));
      _mm256_storeu_ps(o1 + j0 + 8,
                       epi8(b1, bias + j0 + 8, r1 ? r1 + j0 + 8 : nullptr));
      _mm256_storeu_ps(o1 + j0 + 16,
                       epi8(b2, bias + j0 + 16, r1 ? r1 + j0 + 16 : nullptr));
      _mm256_storeu_ps(o1 + j0 + 24,
                       epi8(b3, bias + j0 + 24, r1 ? r1 + j0 + 24 : nullptr));
    }
    for (; j0 + 8 <= out_dim; j0 += 8) {
      const float* w_base = w + j0;
      __m256 a = _mm256_setzero_ps(), b = _mm256_setzero_ps();
      for (int64_t l = 0; l < in; ++l) {
        const __m256 wv = _mm256_loadu_ps(w_base + l * out_dim);
        a = _mm256_fmadd_ps(_mm256_set1_ps(x0[l]), wv, a);
        b = _mm256_fmadd_ps(_mm256_set1_ps(x1[l]), wv, b);
      }
      _mm256_storeu_ps(o0 + j0, epi8(a, bias + j0, r0 ? r0 + j0 : nullptr));
      _mm256_storeu_ps(o1 + j0, epi8(b, bias + j0, r1 ? r1 + j0 : nullptr));
    }
    for (; j0 < out_dim; ++j0) {
      float a = 0.0f, b = 0.0f;
      for (int64_t l = 0; l < in; ++l) {
        const float wv = w[l * out_dim + j0];
        a = std::fmaf(x0[l], wv, a);
        b = std::fmaf(x1[l], wv, b);
      }
      o0[j0] = epi1(a, bias[j0], r0 ? r0 + j0 : nullptr);
      o1[j0] = epi1(b, bias[j0], r1 ? r1 + j0 : nullptr);
    }
  }
  for (; i < m; ++i) {
    const float* x0 = x + i * in;
    float* o0 = out + i * out_dim;
    const float* r0 = residual != nullptr ? residual + i * out_dim : nullptr;
    int64_t j0 = 0;
    for (; j0 + 8 <= out_dim; j0 += 8) {
      const float* w_base = w + j0;
      __m256 a = _mm256_setzero_ps();
      for (int64_t l = 0; l < in; ++l) {
        a = _mm256_fmadd_ps(_mm256_set1_ps(x0[l]),
                            _mm256_loadu_ps(w_base + l * out_dim), a);
      }
      _mm256_storeu_ps(o0 + j0, epi8(a, bias + j0, r0 ? r0 + j0 : nullptr));
    }
    for (; j0 < out_dim; ++j0) {
      float a = 0.0f;
      for (int64_t l = 0; l < in; ++l) {
        a = std::fmaf(x0[l], w[l * out_dim + j0], a);
      }
      o0[j0] = epi1(a, bias[j0], r0 ? r0 + j0 : nullptr);
    }
  }
}

#endif  // AVX2 && FMA

}  // namespace

void AddForward(const float* a, const float* b, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void LinearForward(const float* x, const float* w, const float* bias,
                   float* out, int64_t m, int64_t in, int64_t out_dim) {
  // Register-blocked GEMM with fused bias. Bit-compatibility with the
  // tape's MatMul+AddBias (Gemm then Axpy) rests on two invariants that
  // this blocking preserves:
  //   - each output accumulates its k-products in the same strict k order,
  //     one fused multiply-add (fmaf / vfmadd lane, single rounding) per
  //     step, starting from 0; blocking only reorders across independent
  //     outputs, never within one, and
  //   - the bias is added once, after the full accumulation (an exact
  //     match for Axpy's y += 1.0f * bias).
  // Keeping a j-block of accumulators in registers removes the per-k
  // store/reload of the output row that bounds the memory-accumulating
  // kernel — the engine's main single-thread win over the tape at these
  // matrix sizes. infer_parity_test pins the resulting bit-identity.
#if defined(__AVX2__) && defined(__FMA__)
  int64_t i = 0;
  // 2 input rows at a time over 32-column blocks: each weight-row load
  // feeds both rows' accumulators, halving load-port pressure in the
  // load-bound inner loop (8 fmadds per 4 weight loads + 2 broadcasts).
  for (; i + 2 <= m; i += 2) {
    const float* x0 = x + i * in;
    const float* x1 = x0 + in;
    float* o0 = out + i * out_dim;
    float* o1 = o0 + out_dim;
    int64_t j0 = 0;
    for (; j0 + 32 <= out_dim; j0 += 32) {
      const float* w_base = w + j0;
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      __m256 a2 = _mm256_setzero_ps(), a3 = _mm256_setzero_ps();
      __m256 b0 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
      __m256 b2 = _mm256_setzero_ps(), b3 = _mm256_setzero_ps();
      for (int64_t l = 0; l < in; ++l) {
        const __m256 xv0 = _mm256_set1_ps(x0[l]);
        const __m256 xv1 = _mm256_set1_ps(x1[l]);
        const float* w_row = w_base + l * out_dim;
        const __m256 w0v = _mm256_loadu_ps(w_row);
        const __m256 w1v = _mm256_loadu_ps(w_row + 8);
        const __m256 w2v = _mm256_loadu_ps(w_row + 16);
        const __m256 w3v = _mm256_loadu_ps(w_row + 24);
        a0 = _mm256_fmadd_ps(xv0, w0v, a0);
        a1 = _mm256_fmadd_ps(xv0, w1v, a1);
        a2 = _mm256_fmadd_ps(xv0, w2v, a2);
        a3 = _mm256_fmadd_ps(xv0, w3v, a3);
        b0 = _mm256_fmadd_ps(xv1, w0v, b0);
        b1 = _mm256_fmadd_ps(xv1, w1v, b1);
        b2 = _mm256_fmadd_ps(xv1, w2v, b2);
        b3 = _mm256_fmadd_ps(xv1, w3v, b3);
      }
      const __m256 bi0 = _mm256_loadu_ps(bias + j0);
      const __m256 bi1 = _mm256_loadu_ps(bias + j0 + 8);
      const __m256 bi2 = _mm256_loadu_ps(bias + j0 + 16);
      const __m256 bi3 = _mm256_loadu_ps(bias + j0 + 24);
      _mm256_storeu_ps(o0 + j0, _mm256_add_ps(a0, bi0));
      _mm256_storeu_ps(o0 + j0 + 8, _mm256_add_ps(a1, bi1));
      _mm256_storeu_ps(o0 + j0 + 16, _mm256_add_ps(a2, bi2));
      _mm256_storeu_ps(o0 + j0 + 24, _mm256_add_ps(a3, bi3));
      _mm256_storeu_ps(o1 + j0, _mm256_add_ps(b0, bi0));
      _mm256_storeu_ps(o1 + j0 + 8, _mm256_add_ps(b1, bi1));
      _mm256_storeu_ps(o1 + j0 + 16, _mm256_add_ps(b2, bi2));
      _mm256_storeu_ps(o1 + j0 + 24, _mm256_add_ps(b3, bi3));
    }
    for (; j0 + 8 <= out_dim; j0 += 8) {
      const float* w_base = w + j0;
      __m256 a = _mm256_setzero_ps(), b = _mm256_setzero_ps();
      for (int64_t l = 0; l < in; ++l) {
        const __m256 wv = _mm256_loadu_ps(w_base + l * out_dim);
        a = _mm256_fmadd_ps(_mm256_set1_ps(x0[l]), wv, a);
        b = _mm256_fmadd_ps(_mm256_set1_ps(x1[l]), wv, b);
      }
      const __m256 bi = _mm256_loadu_ps(bias + j0);
      _mm256_storeu_ps(o0 + j0, _mm256_add_ps(a, bi));
      _mm256_storeu_ps(o1 + j0, _mm256_add_ps(b, bi));
    }
    for (; j0 < out_dim; ++j0) {
      float a = 0.0f, b = 0.0f;
      for (int64_t l = 0; l < in; ++l) {
        const float wv = w[l * out_dim + j0];
        a = std::fmaf(x0[l], wv, a);
        b = std::fmaf(x1[l], wv, b);
      }
      o0[j0] = a + bias[j0];
      o1[j0] = b + bias[j0];
    }
  }
  for (; i < m; ++i) {
    const float* x_row = x + i * in;
    float* out_row = out + i * out_dim;
    int64_t j0 = 0;
    for (; j0 + 32 <= out_dim; j0 += 32) {
      const float* w_base = w + j0;
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      __m256 acc2 = _mm256_setzero_ps();
      __m256 acc3 = _mm256_setzero_ps();
      for (int64_t l = 0; l < in; ++l) {
        const __m256 xv = _mm256_set1_ps(x_row[l]);
        const float* w_row = w_base + l * out_dim;
        acc0 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(w_row), acc0);
        acc1 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(w_row + 8), acc1);
        acc2 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(w_row + 16), acc2);
        acc3 = _mm256_fmadd_ps(xv, _mm256_loadu_ps(w_row + 24), acc3);
      }
      _mm256_storeu_ps(out_row + j0,
                       _mm256_add_ps(acc0, _mm256_loadu_ps(bias + j0)));
      _mm256_storeu_ps(out_row + j0 + 8,
                       _mm256_add_ps(acc1, _mm256_loadu_ps(bias + j0 + 8)));
      _mm256_storeu_ps(out_row + j0 + 16,
                       _mm256_add_ps(acc2, _mm256_loadu_ps(bias + j0 + 16)));
      _mm256_storeu_ps(out_row + j0 + 24,
                       _mm256_add_ps(acc3, _mm256_loadu_ps(bias + j0 + 24)));
    }
    for (; j0 + 8 <= out_dim; j0 += 8) {
      const float* w_base = w + j0;
      __m256 acc = _mm256_setzero_ps();
      for (int64_t l = 0; l < in; ++l) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(x_row[l]),
                              _mm256_loadu_ps(w_base + l * out_dim), acc);
      }
      _mm256_storeu_ps(out_row + j0,
                       _mm256_add_ps(acc, _mm256_loadu_ps(bias + j0)));
    }
    for (; j0 < out_dim; ++j0) {
      float acc = 0.0f;
      for (int64_t l = 0; l < in; ++l) {
        acc = std::fmaf(x_row[l], w[l * out_dim + j0], acc);
      }
      out_row[j0] = acc + bias[j0];
    }
  }
#else
  // Portable fallback: the tape's exact composition.
  Gemm(x, w, out, m, in, out_dim, /*accumulate=*/false);
  for (int64_t i = 0; i < m; ++i) {
    Axpy(1.0f, bias, out + i * out_dim, out_dim);
  }
#endif
}

void LinearGeluForward(const float* x, const float* w, const float* bias,
                       float* out, int64_t m, int64_t in, int64_t out_dim) {
#if defined(__AVX2__) && defined(__FMA__)
  LinearFusedEpi<1>(x, w, bias, out, m, in, out_dim, nullptr);
#else
  // Portable fallback: the unfused composition it is defined against.
  LinearForward(x, w, bias, out, m, in, out_dim);
  GeluForward(out, out, m * out_dim);
#endif
}

void LinearResidualForward(const float* x, const float* w, const float* bias,
                           const float* residual, float* out, int64_t m,
                           int64_t in, int64_t out_dim) {
#if defined(__AVX2__) && defined(__FMA__)
  LinearFusedEpi<2>(x, w, bias, out, m, in, out_dim, residual);
#else
  LinearForward(x, w, bias, out, m, in, out_dim);
  AddForward(residual, out, out, m * out_dim);
#endif
}

void GeluForward(const float* x, float* out, int64_t n) {
  // Vectorized tanh-approximation GELU. The scalar tail reproduces the
  // 8-lane arithmetic exactly (see mathfn.h), so results don't depend on
  // where the vector/tail boundary falls. The backward pass (tensor/ops.cc
  // Gelu) evaluates the same GeluTanhArg/FastTanhf pair.
  int64_t i = 0;
#if defined(__AVX2__) && defined(__FMA__)
  const __m256 coef = _mm256_set1_ps(kGeluCoef);
  const __m256 cubic = _mm256_set1_ps(kGeluCubic);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    const __m256 cvv = _mm256_mul_ps(_mm256_mul_ps(cubic, v), v);
    const __m256 u = _mm256_mul_ps(coef, _mm256_fmadd_ps(cvv, v, v));
    const __m256 t = FastTanhf8(u);
    _mm256_storeu_ps(
        out + i,
        _mm256_mul_ps(_mm256_mul_ps(half, v), _mm256_add_ps(one, t)));
  }
#endif
  for (; i < n; ++i) {
    float v = x[i];
    float t = FastTanhf(GeluTanhArg(v));
    out[i] = (0.5f * v) * (1.0f + t);
  }
}

void LayerNormForward(const float* x, const float* gamma, const float* beta,
                      float* out, int64_t m, int64_t n, float eps,
                      float* xhat, float* inv_std) {
  for (int64_t i = 0; i < m; ++i) {
    const float* row = x + i * n;
    double mean = 0.0;
    for (int64_t j = 0; j < n; ++j) mean += row[j];
    mean /= n;
    double var = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      double d = row[j] - mean;
      var += d * d;
    }
    var /= n;
    float inv = static_cast<float>(1.0 / std::sqrt(var + eps));
    if (inv_std != nullptr) inv_std[i] = inv;
    for (int64_t j = 0; j < n; ++j) {
      float h = (row[j] - static_cast<float>(mean)) * inv;
      if (xhat != nullptr) xhat[i * n + j] = h;
      out[i * n + j] = gamma[j] * h + beta[j];
    }
  }
}

void AttentionForward(const float* q, const float* k, const float* v,
                      float* out, int64_t t, int64_t d, int32_t heads,
                      float* probs, AttentionScratch& scratch) {
  GOALEX_CHECK_GT(heads, 0);
  GOALEX_CHECK_MSG(d % heads == 0, "d_model " << d << " not divisible by "
                                              << heads << " heads");
  int64_t dh = d / heads;
  float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  scratch.Resize(t, dh);
  float* qa = scratch.qa.data();
  float* ka = scratch.ka.data();
  float* va = scratch.va.data();
  float* oa = scratch.oa.data();
  float* kat = scratch.kat.data();
  float* scores = scratch.scores.data();

  auto slice_head = [t, d, dh](const float* src, int32_t head, float* dst) {
    for (int64_t i = 0; i < t; ++i) {
      const float* row = src + i * d + head * dh;
      std::copy(row, row + dh, dst + i * dh);
    }
  };

  for (int32_t a = 0; a < heads; ++a) {
    slice_head(q, a, qa);
    slice_head(k, a, ka);
    slice_head(v, a, va);
    // S = scale * Qa * Ka^T  [t, t]. Transposing Ka once turns the score
    // matrix into a plain row-major GEMM whose inner loop streams over
    // contiguous score rows — vectorizable, unlike the latency-chained
    // serial dot products of GemmTransB. Per output the l-accumulation
    // order is unchanged; Gemm pins each step's rounding with fmaf.
    for (int64_t i = 0; i < t; ++i) {
      for (int64_t l = 0; l < dh; ++l) kat[l * t + i] = ka[i * dh + l];
    }
    GemmRegAcc(qa, kat, scores, t, dh, t);
    for (int64_t i = 0; i < t * t; ++i) scores[i] *= scale;
    // P = row-softmax(S), written to the caller's capture buffer when the
    // tape needs it for backward, else to scratch.
    float* p = probs != nullptr ? probs + a * t * t : scores;
    for (int64_t i = 0; i < t; ++i) {
      SoftmaxRow(scores + i * t, p + i * t, t);
    }
    // Oa = P * Va  [t, dh]
    GemmRegAcc(p, va, oa, t, t, dh);
    for (int64_t i = 0; i < t; ++i) {
      std::copy(oa + i * dh, oa + (i + 1) * dh, out + i * d + a * dh);
    }
  }
}

void EmbedSumForward(const float* token_table, int64_t vocab,
                     const float* pos_table, const int32_t* ids, int64_t t,
                     int64_t d, float* out) {
  for (int64_t i = 0; i < t; ++i) {
    GOALEX_CHECK_MSG(ids[i] >= 0 && ids[i] < vocab,
                     "embedding id " << ids[i] << " out of range " << vocab);
    const float* tok = token_table + ids[i] * d;
    const float* pos = pos_table + i * d;
    AddForward(tok, pos, out + i * d, d);
  }
}

void MeanRowsForward(const float* x, float* out, int64_t m, int64_t n) {
  GOALEX_CHECK_GT(m, 0);
  std::fill(out, out + n, 0.0f);
  for (int64_t i = 0; i < m; ++i) Axpy(1.0f, x + i * n, out, n);
  float inv = 1.0f / static_cast<float>(m);
  for (int64_t j = 0; j < n; ++j) out[j] *= inv;
}

int32_t ArgmaxRow(const float* row, int64_t n) {
  int32_t best = 0;
  for (int64_t j = 1; j < n; ++j) {
    if (row[j] > row[best]) best = static_cast<int32_t>(j);
  }
  return best;
}

}  // namespace goalex::tensor
