#include "tensor/scratch.h"

namespace goalex::tensor {
namespace {

thread_local ScratchAllocator* current_allocator = nullptr;

}  // namespace

ScratchScope::ScratchScope(ScratchAllocator* allocator)
    : previous_(current_allocator) {
  current_allocator = allocator;
}

ScratchScope::~ScratchScope() { current_allocator = previous_; }

std::shared_ptr<std::vector<float>> AllocateTensorStorage(size_t n) {
  if (current_allocator != nullptr) return current_allocator->Acquire(n);
  return std::make_shared<std::vector<float>>(n, 0.0f);
}

}  // namespace goalex::tensor
