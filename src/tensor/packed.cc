#include "tensor/packed.h"

#include <algorithm>
#include <cmath>
#include <limits>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

#include "common/check.h"
#include "tensor/forward.h"
#include "tensor/kernels.h"
#include "tensor/mathfn.h"

namespace goalex::tensor {
namespace {

#if defined(__AVX2__) && defined(__FMA__)

/// Scores for one tile: c[r, t] = scale * (q_rows · kat) with the running
/// per-row max and the tile-wide min computed in the same pass. Two query
/// rows share each 16-column block of K loads. Per output the dh-products
/// accumulate in strict order from 0 with one fused multiply-add each and
/// the scale is applied once at store — the same single rounding
/// AttentionForward's GemmRegAcc + scale pass performs, so scores (and
/// everything downstream) stay bit-identical. The tile min feeds the
/// masked-score guard in the caller; row maxima seed the streaming softmax.
void ScoreMaxTile(const float* q, int64_t ld, const float* kat, float* c,
                  int64_t t, int64_t r, int64_t dh, float scale,
                  float* row_max, float* tile_min) {
  const __m256 sv = _mm256_set1_ps(scale);
  const __m256 ninf = _mm256_set1_ps(-std::numeric_limits<float>::infinity());
  __m256 mn8 = _mm256_set1_ps(std::numeric_limits<float>::infinity());
  float mn_s = std::numeric_limits<float>::infinity();
  int64_t i = 0;
  for (; i + 2 <= r; i += 2) {
    const float* q0 = q + i * ld;
    const float* q1 = q0 + ld;
    float* c0 = c + i * t;
    float* c1 = c0 + t;
    __m256 mx0 = ninf, mx1 = ninf;
    int64_t j0 = 0;
    for (; j0 + 16 <= t; j0 += 16) {
      const float* b_base = kat + j0;
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      __m256 b0 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
      for (int64_t l = 0; l < dh; ++l) {
        const float* k_row = b_base + l * t;
        const __m256 k0 = _mm256_loadu_ps(k_row);
        const __m256 k1 = _mm256_loadu_ps(k_row + 8);
        const __m256 qv0 = _mm256_set1_ps(q0[l]);
        const __m256 qv1 = _mm256_set1_ps(q1[l]);
        a0 = _mm256_fmadd_ps(qv0, k0, a0);
        a1 = _mm256_fmadd_ps(qv0, k1, a1);
        b0 = _mm256_fmadd_ps(qv1, k0, b0);
        b1 = _mm256_fmadd_ps(qv1, k1, b1);
      }
      a0 = _mm256_mul_ps(a0, sv);
      a1 = _mm256_mul_ps(a1, sv);
      b0 = _mm256_mul_ps(b0, sv);
      b1 = _mm256_mul_ps(b1, sv);
      _mm256_storeu_ps(c0 + j0, a0);
      _mm256_storeu_ps(c0 + j0 + 8, a1);
      _mm256_storeu_ps(c1 + j0, b0);
      _mm256_storeu_ps(c1 + j0 + 8, b1);
      mx0 = _mm256_max_ps(mx0, _mm256_max_ps(a0, a1));
      mx1 = _mm256_max_ps(mx1, _mm256_max_ps(b0, b1));
      mn8 = _mm256_min_ps(mn8, _mm256_min_ps(_mm256_min_ps(a0, a1),
                                             _mm256_min_ps(b0, b1)));
    }
    for (; j0 + 8 <= t; j0 += 8) {
      const float* b_base = kat + j0;
      __m256 a0 = _mm256_setzero_ps(), b0 = _mm256_setzero_ps();
      for (int64_t l = 0; l < dh; ++l) {
        const __m256 kv = _mm256_loadu_ps(b_base + l * t);
        a0 = _mm256_fmadd_ps(_mm256_set1_ps(q0[l]), kv, a0);
        b0 = _mm256_fmadd_ps(_mm256_set1_ps(q1[l]), kv, b0);
      }
      a0 = _mm256_mul_ps(a0, sv);
      b0 = _mm256_mul_ps(b0, sv);
      _mm256_storeu_ps(c0 + j0, a0);
      _mm256_storeu_ps(c1 + j0, b0);
      mx0 = _mm256_max_ps(mx0, a0);
      mx1 = _mm256_max_ps(mx1, b0);
      mn8 = _mm256_min_ps(mn8, _mm256_min_ps(a0, b0));
    }
    alignas(32) float l0[8], l1[8];
    _mm256_store_ps(l0, mx0);
    _mm256_store_ps(l1, mx1);
    float m0 = -std::numeric_limits<float>::infinity(), m1 = m0;
    for (int z = 0; z < 8; ++z) {
      m0 = std::max(m0, l0[z]);
      m1 = std::max(m1, l1[z]);
    }
    for (; j0 < t; ++j0) {
      float acc0 = 0.0f, acc1 = 0.0f;
      for (int64_t l = 0; l < dh; ++l) {
        acc0 = std::fmaf(q0[l], kat[l * t + j0], acc0);
        acc1 = std::fmaf(q1[l], kat[l * t + j0], acc1);
      }
      acc0 *= scale;
      acc1 *= scale;
      c0[j0] = acc0;
      c1[j0] = acc1;
      m0 = std::max(m0, acc0);
      m1 = std::max(m1, acc1);
      mn_s = std::min(mn_s, std::min(acc0, acc1));
    }
    row_max[i] = m0;
    row_max[i + 1] = m1;
  }
  for (; i < r; ++i) {
    const float* q0 = q + i * ld;
    float* c0 = c + i * t;
    __m256 mx0 = ninf;
    int64_t j0 = 0;
    for (; j0 + 8 <= t; j0 += 8) {
      const float* b_base = kat + j0;
      __m256 a0 = _mm256_setzero_ps();
      for (int64_t l = 0; l < dh; ++l) {
        a0 = _mm256_fmadd_ps(_mm256_set1_ps(q0[l]),
                             _mm256_loadu_ps(b_base + l * t), a0);
      }
      a0 = _mm256_mul_ps(a0, sv);
      _mm256_storeu_ps(c0 + j0, a0);
      mx0 = _mm256_max_ps(mx0, a0);
      mn8 = _mm256_min_ps(mn8, a0);
    }
    alignas(32) float l0[8];
    _mm256_store_ps(l0, mx0);
    float m0 = -std::numeric_limits<float>::infinity();
    for (int z = 0; z < 8; ++z) m0 = std::max(m0, l0[z]);
    for (; j0 < t; ++j0) {
      float acc0 = 0.0f;
      for (int64_t l = 0; l < dh; ++l) {
        acc0 = std::fmaf(q0[l], kat[l * t + j0], acc0);
      }
      acc0 *= scale;
      c0[j0] = acc0;
      m0 = std::max(m0, acc0);
      mn_s = std::min(mn_s, acc0);
    }
    row_max[i] = m0;
  }
  alignas(32) float mnl[8];
  _mm256_store_ps(mnl, mn8);
  for (int z = 0; z < 8; ++z) mn_s = std::min(mn_s, mnl[z]);
  *tile_min = mn_s;
}

/// exp(rows - row_max) in place, then the per-row normalizer as a serial
/// double sum — SoftmaxRow's exact chains, with four rows riding in
/// parallel __m256d lanes (serial j order within each lane).
void ExpSumTile(float* rows, int64_t t, int64_t nrows, const float* mx,
                double* sums) {
  for (int64_t r = 0; r < nrows; ++r) {
    float* rr = rows + r * t;
    const __m256 shift = _mm256_set1_ps(mx[r]);
    int64_t j = 0;
    for (; j + 8 <= t; j += 8) {
      _mm256_storeu_ps(
          rr + j, FastExpf8(_mm256_sub_ps(_mm256_loadu_ps(rr + j), shift)));
    }
    for (; j < t; ++j) rr[j] = FastExpf(rr[j] - mx[r]);
  }
  int64_t r = 0;
  for (; r + 4 <= nrows; r += 4) {
    const float* r0 = rows + r * t;
    const float* r1 = r0 + t;
    const float* r2 = r1 + t;
    const float* r3 = r2 + t;
    __m256d sum = _mm256_setzero_pd();
    for (int64_t j = 0; j < t; ++j) {
      __m128 f = _mm_setr_ps(r0[j], r1[j], r2[j], r3[j]);
      sum = _mm256_add_pd(sum, _mm256_cvtps_pd(f));
    }
    _mm256_storeu_pd(sums + r, sum);
  }
  for (; r < nrows; ++r) {
    const float* rr = rows + r * t;
    double s = 0.0;
    for (int64_t j = 0; j < t; ++j) s += rr[j];
    sums[r] = s;
  }
}

/// probs × V with the 1/sum normalizer folded into the broadcast:
/// set1(e[l] * inv) is the same single-rounded float SoftmaxRow stores
/// before the reference's GEMM, so the fmaf chains stay bit-identical.
/// Two rows share each block of V loads.
void ProbVTile(const float* e, int64_t t, const float* inv, const float* v,
               int64_t ldv, float* out, int64_t ldo, int64_t m, int64_t dh) {
  int64_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const float* p0 = e + i * t;
    const float* p1 = p0 + t;
    const float inv0 = inv[i], inv1 = inv[i + 1];
    float* o0 = out + i * ldo;
    float* o1 = o0 + ldo;
    int64_t j0 = 0;
    for (; j0 + 16 <= dh; j0 += 16) {
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      __m256 b0 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
      for (int64_t l = 0; l < t; ++l) {
        const float* v_row = v + l * ldv + j0;
        const __m256 v0 = _mm256_loadu_ps(v_row);
        const __m256 v1 = _mm256_loadu_ps(v_row + 8);
        const __m256 pv0 = _mm256_set1_ps(p0[l] * inv0);
        const __m256 pv1 = _mm256_set1_ps(p1[l] * inv1);
        a0 = _mm256_fmadd_ps(pv0, v0, a0);
        a1 = _mm256_fmadd_ps(pv0, v1, a1);
        b0 = _mm256_fmadd_ps(pv1, v0, b0);
        b1 = _mm256_fmadd_ps(pv1, v1, b1);
      }
      _mm256_storeu_ps(o0 + j0, a0);
      _mm256_storeu_ps(o0 + j0 + 8, a1);
      _mm256_storeu_ps(o1 + j0, b0);
      _mm256_storeu_ps(o1 + j0 + 8, b1);
    }
    for (; j0 < dh; ++j0) {
      float a = 0.0f, b = 0.0f;
      for (int64_t l = 0; l < t; ++l) {
        a = std::fmaf(p0[l] * inv0, v[l * ldv + j0], a);
        b = std::fmaf(p1[l] * inv1, v[l * ldv + j0], b);
      }
      o0[j0] = a;
      o1[j0] = b;
    }
  }
  for (; i < m; ++i) {
    const float* p0 = e + i * t;
    const float inv0 = inv[i];
    float* o0 = out + i * ldo;
    int64_t j0 = 0;
    for (; j0 + 8 <= dh; j0 += 8) {
      __m256 a0 = _mm256_setzero_ps();
      for (int64_t l = 0; l < t; ++l) {
        a0 = _mm256_fmadd_ps(_mm256_set1_ps(p0[l] * inv0),
                             _mm256_loadu_ps(v + l * ldv + j0), a0);
      }
      _mm256_storeu_ps(o0 + j0, a0);
    }
    for (; j0 < dh; ++j0) {
      float a = 0.0f;
      for (int64_t l = 0; l < t; ++l) {
        a = std::fmaf(p0[l] * inv0, v[l * ldv + j0], a);
      }
      o0[j0] = a;
    }
  }
}

#endif  // AVX2 && FMA

}  // namespace

void LayerNormPackedForward(const float* x, const float* gamma,
                            const float* beta, float* out, int64_t m,
                            int64_t n, float eps) {
#if defined(__AVX2__) && defined(__FMA__)
  int64_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* r0 = x + i * n;
    const float* r1 = r0 + n;
    const float* r2 = r1 + n;
    const float* r3 = r2 + n;
    // Mean and variance in doubles, serial j order per lane — each lane's
    // chain is exactly the scalar LayerNormForward computation.
    __m256d mean = _mm256_setzero_pd();
    for (int64_t j = 0; j < n; ++j) {
      __m128 f = _mm_setr_ps(r0[j], r1[j], r2[j], r3[j]);
      mean = _mm256_add_pd(mean, _mm256_cvtps_pd(f));
    }
    mean = _mm256_div_pd(mean, _mm256_set1_pd(static_cast<double>(n)));
    __m256d var = _mm256_setzero_pd();
    for (int64_t j = 0; j < n; ++j) {
      __m128 f = _mm_setr_ps(r0[j], r1[j], r2[j], r3[j]);
      __m256d dd = _mm256_sub_pd(_mm256_cvtps_pd(f), mean);
      var = _mm256_add_pd(var, _mm256_mul_pd(dd, dd));
    }
    var = _mm256_div_pd(var, _mm256_set1_pd(static_cast<double>(n)));
    __m256d invd = _mm256_div_pd(
        _mm256_set1_pd(1.0),
        _mm256_sqrt_pd(
            _mm256_add_pd(var, _mm256_set1_pd(static_cast<double>(eps)))));
    alignas(32) double inv_a[4], mean_a[4];
    _mm256_store_pd(inv_a, invd);
    _mm256_store_pd(mean_a, mean);
    for (int64_t rr = 0; rr < 4; ++rr) {
      const float* row = x + (i + rr) * n;
      float* orow = out + (i + rr) * n;
      const float inv = static_cast<float>(inv_a[rr]);
      const float mf = static_cast<float>(mean_a[rr]);
      const __m256 invv = _mm256_set1_ps(inv);
      const __m256 mv = _mm256_set1_ps(mf);
      int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        __m256 h = _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(row + j), mv),
                                 invv);
        _mm256_storeu_ps(orow + j,
                         _mm256_fmadd_ps(_mm256_loadu_ps(gamma + j), h,
                                         _mm256_loadu_ps(beta + j)));
      }
      for (; j < n; ++j) {
        float h = (row[j] - mf) * inv;
        orow[j] = std::fmaf(gamma[j], h, beta[j]);
      }
    }
  }
  for (; i < m; ++i) {
    LayerNormForward(x + i * n, gamma, beta, out + i * n, 1, n, eps, nullptr,
                     nullptr);
  }
#else
  LayerNormForward(x, gamma, beta, out, m, n, eps, nullptr, nullptr);
#endif
}

void AttentionPackedForward(const float* q, const float* k, const float* v,
                            float* out, const int64_t* offsets, int64_t nseq,
                            int64_t d, int32_t heads, float* kat_scratch,
                            float* score_scratch) {
  GOALEX_CHECK_GT(heads, 0);
  GOALEX_CHECK_MSG(d % heads == 0, "d_model " << d << " not divisible by "
                                              << heads << " heads");
#if defined(__AVX2__) && defined(__FMA__)
  const int64_t dh = d / heads;
  const int64_t ld = d;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  constexpr int64_t R = kPackedAttentionRowBlock;
  for (int64_t s = 0; s < nseq; ++s) {
    const int64_t base = offsets[s];
    const int64_t t = offsets[s + 1] - offsets[s];
    if (t <= 0) continue;
    for (int32_t a = 0; a < heads; ++a) {
      // Heads are strided slices of the packed [t, d] activations; K is
      // transposed once per head so score tiles stream contiguous rows.
      const float* qh = q + base * ld + a * dh;
      const float* kh = k + base * ld + a * dh;
      const float* vh = v + base * ld + a * dh;
      for (int64_t j = 0; j < t; ++j) {
        for (int64_t l = 0; l < dh; ++l) {
          kat_scratch[l * t + j] = kh[j * ld + l];
        }
      }
      float* oh = out + base * d + a * dh;
      float row_max[R];
      double row_sum[R];
      float row_inv[R];
      for (int64_t i0 = 0; i0 < t; i0 += R) {
        const int64_t r = std::min(R, t - i0);
        float tile_min;
        ScoreMaxTile(qh + i0 * ld, ld, kat_scratch, score_scratch, t, r, dh,
                     scale, row_max, &tile_min);
        // The streaming path shifts by the true row max and folds 1/sum
        // into the probs×V broadcast. SoftmaxRow does the same — unless a
        // row holds masked (≤ kSoftmaxMask/2) or non-finite scores, where
        // it skips entries / degrades to uniform. Inference never masks,
        // so the guard exists only to keep the fallback exact: any
        // suspicious tile is handed to SoftmaxRow itself (inv = 1).
        bool plain = tile_min > kSoftmaxMask / 2;
        for (int64_t z = 0; z < r; ++z) {
          plain = plain && std::isfinite(row_max[z]);
        }
        if (!plain) {
          for (int64_t z = 0; z < r; ++z) {
            SoftmaxRow(score_scratch + z * t, score_scratch + z * t, t);
            row_inv[z] = 1.0f;
          }
        } else {
          ExpSumTile(score_scratch, t, r, row_max, row_sum);
          for (int64_t z = 0; z < r; ++z) {
            row_inv[z] = static_cast<float>(1.0 / row_sum[z]);
          }
        }
        ProbVTile(score_scratch, t, row_inv, vh, ld, oh + i0 * d, d, r, dh);
      }
    }
  }
#else
  // Portable fallback: the per-example kernel over each sequence slice
  // (materializes the [t, t] scores it exists to avoid — correctness
  // reference only).
  (void)kat_scratch;
  (void)score_scratch;
  AttentionScratch scratch;
  for (int64_t s = 0; s < nseq; ++s) {
    const int64_t base = offsets[s];
    const int64_t t = offsets[s + 1] - offsets[s];
    if (t <= 0) continue;
    AttentionForward(q + base * d, k + base * d, v + base * d, out + base * d,
                     t, d, heads, /*probs=*/nullptr, scratch);
  }
#endif
}

}  // namespace goalex::tensor
