#ifndef GOALEX_TENSOR_PACKED_H_
#define GOALEX_TENSOR_PACKED_H_

#include <cstdint>

namespace goalex::tensor {

/// Padding-free packed-batch kernels (DESIGN.md §14). A packed batch lays
/// variable-length sequences out token-major — activations are a single
/// dense [total_tokens, n] matrix with no padding rows — and an offsets
/// table offsets[0..nseq] marks sequence boundaries (sequence s owns token
/// rows [offsets[s], offsets[s+1])). Row-wise ops (layer norm, linears,
/// GELU) ignore the boundaries entirely and run as one GEMM over the packed
/// token axis; only attention consults the offsets table, so no sequence
/// ever attends across its neighbours.
///
/// Like forward.h, every kernel here is bit-identical per sequence to its
/// per-example counterpart — parity is pinned by infer_packed_test.

/// Query rows processed per streaming-softmax tile in
/// AttentionPackedForward. Callers size `score_scratch` with this.
inline constexpr int64_t kPackedAttentionRowBlock = 8;

/// LayerNormForward over the packed token axis: same double-precision
/// mean/variance chains per row (four rows ride in parallel __m256d lanes,
/// serial within each lane), same float normalize. Equivalent to
/// LayerNormForward(x, gamma, beta, out, m, n, eps, nullptr, nullptr).
void LayerNormPackedForward(const float* x, const float* gamma,
                            const float* beta, float* out, int64_t m,
                            int64_t n, float eps);

/// Multi-head scaled dot-product self-attention over a packed batch,
/// streaming-softmax edition: q, k, v, out are packed [total_tokens, d].
/// Per sequence and head, scores are produced kPackedAttentionRowBlock
/// query rows at a time and immediately reduced (running row max →
/// exp/normalizer → probs×V with the 1/sum folded into the broadcast), so
/// peak scratch is O(row_block · t) instead of AttentionForward's O(t²)
/// score matrix — flash-attention structure, CPU edition.
///
/// `kat_scratch` must hold (d/heads) · max_t floats and `score_scratch`
/// kPackedAttentionRowBlock · max_t floats, where max_t is the longest
/// sequence in the batch. Outputs are bit-identical per sequence to
/// AttentionForward (same fmaf chains per output; masked/non-finite score
/// tiles fall back to SoftmaxRow exactly like the reference).
void AttentionPackedForward(const float* q, const float* k, const float* v,
                            float* out, const int64_t* offsets, int64_t nseq,
                            int64_t d, int32_t heads, float* kat_scratch,
                            float* score_scratch);

}  // namespace goalex::tensor

#endif  // GOALEX_TENSOR_PACKED_H_
