#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

#include "tensor/scratch.h"

namespace goalex::tensor {
namespace {

int64_t ComputeNumel(const std::vector<int64_t>& shape) {
  int64_t numel = 1;
  for (int64_t d : shape) {
    GOALEX_CHECK_GE(d, 0);
    numel *= d;
  }
  return numel;
}

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)), numel_(ComputeNumel(shape_)) {
  // Routed through the scratch hook: inside a ScratchScope (the training
  // fast path) storage is recycled across examples instead of reallocated.
  data_ = AllocateTensorStorage(static_cast<size_t>(numel_));
}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::RandomNormal(std::vector<int64_t> shape, float stddev,
                            Rng& rng) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = stddev * static_cast<float>(rng.NextGaussian());
  }
  return t;
}

Tensor Tensor::RandomUniform(std::vector<int64_t> shape, float bound,
                             Rng& rng) {
  Tensor t(std::move(shape));
  float* p = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    p[i] = static_cast<float>(rng.NextUniform(-bound, bound));
  }
  return t;
}

Tensor Tensor::FromValues(std::vector<int64_t> shape,
                          std::vector<float> values) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = ComputeNumel(t.shape_);
  GOALEX_CHECK_EQ(static_cast<size_t>(t.numel_), values.size());
  t.data_ = std::make_shared<std::vector<float>>(std::move(values));
  return t;
}

Tensor Tensor::Clone() const {
  Tensor t;
  t.shape_ = shape_;
  t.numel_ = numel_;
  if (data_) {
    // Pool-aware like the shape constructor (Scale clones per example on
    // the training hot path).
    t.data_ = AllocateTensorStorage(data_->size());
    *t.data_ = *data_;
  } else {
    t.data_ = std::make_shared<std::vector<float>>();
  }
  return t;
}

Tensor Tensor::Reshaped(std::vector<int64_t> new_shape) const {
  GOALEX_CHECK_EQ(ComputeNumel(new_shape), numel_);
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.numel_ = numel_;
  t.data_ = data_;
  return t;
}

void Tensor::Fill(float value) {
  if (!data_) return;
  for (float& x : *data_) x = value;
}

double Tensor::Sum() const {
  if (!data_) return 0.0;
  double sum = 0.0;
  for (float x : *data_) sum += x;
  return sum;
}

bool Tensor::HasNonFinite() const {
  if (!data_) return false;
  for (float x : *data_) {
    if (!std::isfinite(x)) return true;
  }
  return false;
}

std::string Tensor::DebugString() const {
  std::ostringstream out;
  out << "Tensor[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out << "x";
    out << shape_[i];
  }
  out << "](";
  int64_t show = std::min<int64_t>(numel_, 8);
  for (int64_t i = 0; i < show; ++i) {
    if (i > 0) out << ", ";
    out << (*data_)[static_cast<size_t>(i)];
  }
  if (numel_ > show) out << ", ...";
  out << ")";
  return out.str();
}

}  // namespace goalex::tensor
