#ifndef GOALEX_TENSOR_MATHFN_H_
#define GOALEX_TENSOR_MATHFN_H_

#include <cmath>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace goalex::tensor {

/// Fast float transcendentals shared by every execution strategy (autograd
/// forward, autograd backward, and the graph-free inference engine). The
/// scalar and AVX2 variants perform the same IEEE-defined operation
/// sequence (fmaf <-> vfmadd lane, floor <-> roundps, div <-> divps), so a
/// value computed 8-wide is bit-identical to the scalar tail — callers can
/// mix them freely inside one array without introducing lane-dependent
/// results. Accuracy: ~2 ulp for Expf, ~1e-7 absolute for Tanhf, which is
/// orders of magnitude below both the finite-difference tolerance of the
/// gradient checks and any effect on model accuracy.
///
/// Cephes-style range reduction: e^x = 2^n * e^r with n = round(x/ln 2),
/// r in [-ln2/2, ln2/2], and a degree-5 minimax polynomial for e^r.

namespace mathfn_detail {
constexpr float kExpHi = 88.3762626647949f;
constexpr float kExpLo = -87.3365478515625f;
constexpr float kLog2e = 1.44269504088896341f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
constexpr float kExpC0 = 1.9875691500e-4f;
constexpr float kExpC1 = 1.3981999507e-3f;
constexpr float kExpC2 = 8.3334519073e-3f;
constexpr float kExpC3 = 4.1665795894e-2f;
constexpr float kExpC4 = 1.6666665459e-1f;
constexpr float kExpC5 = 5.0000001201e-1f;
}  // namespace mathfn_detail

/// e^x for finite float x; clamps to the representable range (never
/// overflows to inf, never underflows below ~1.2e-38).
inline float FastExpf(float x) {
  using namespace mathfn_detail;
  x = x > kExpHi ? kExpHi : x;
  x = x < kExpLo ? kExpLo : x;
  float n = std::floor(std::fmaf(x, kLog2e, 0.5f));
  // r = x - n*ln2 in two steps for extra bits of ln2.
  float r = std::fmaf(-n, kLn2Hi, x);
  r = std::fmaf(-n, kLn2Lo, r);
  float y = kExpC0;
  y = std::fmaf(y, r, kExpC1);
  y = std::fmaf(y, r, kExpC2);
  y = std::fmaf(y, r, kExpC3);
  y = std::fmaf(y, r, kExpC4);
  y = std::fmaf(y, r, kExpC5);
  y = std::fmaf(y, r * r, r);
  y += 1.0f;
  // 2^n via exponent bits; n is integral in [-126, 128) after the clamp.
  uint32_t bits = static_cast<uint32_t>(static_cast<int32_t>(n) + 127) << 23;
  float scale;
  std::memcpy(&scale, &bits, sizeof(scale));
  return y * scale;
}

/// tanh(x) = sign(x) * (1 - t) / (1 + t) with t = e^(-2|x|); the exp
/// argument is always <= 0 so the computation never overflows, and 1 - t is
/// exact (Sterbenz) for t >= 0.5, keeping small-|x| results accurate.
inline float FastTanhf(float x) {
  float a = std::fabs(x);
  float t = FastExpf(-2.0f * a);
  float r = (1.0f - t) / (1.0f + t);
  return std::copysign(r, x);
}

constexpr float kGeluCoef = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluCubic = 0.044715f;

/// The tanh argument of the GELU approximation,
/// sqrt(2/pi) * (v + 0.044715 v^3), in the exact operation order the
/// vectorized GeluForward uses — shared with the backward pass so forward
/// and analytic gradient see the same tanh input.
inline float GeluTanhArg(float v) {
  float cvv = (kGeluCubic * v) * v;
  return kGeluCoef * std::fmaf(cvv, v, v);
}

#if defined(__AVX2__) && defined(__FMA__)

/// 8-lane FastExpf; each lane is bit-identical to the scalar function.
inline __m256 FastExpf8(__m256 x) {
  using namespace mathfn_detail;
  x = _mm256_min_ps(x, _mm256_set1_ps(kExpHi));
  x = _mm256_max_ps(x, _mm256_set1_ps(kExpLo));
  __m256 n = _mm256_floor_ps(
      _mm256_fmadd_ps(x, _mm256_set1_ps(kLog2e), _mm256_set1_ps(0.5f)));
  __m256 r = _mm256_fnmadd_ps(n, _mm256_set1_ps(kLn2Hi), x);
  r = _mm256_fnmadd_ps(n, _mm256_set1_ps(kLn2Lo), r);
  __m256 y = _mm256_set1_ps(kExpC0);
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(kExpC1));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(kExpC2));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(kExpC3));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(kExpC4));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(kExpC5));
  y = _mm256_fmadd_ps(y, _mm256_mul_ps(r, r), r);
  y = _mm256_add_ps(y, _mm256_set1_ps(1.0f));
  __m256i bits = _mm256_slli_epi32(
      _mm256_add_epi32(_mm256_cvttps_epi32(n), _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(bits));
}

/// 8-lane FastTanhf; each lane is bit-identical to the scalar function.
inline __m256 FastTanhf8(__m256 x) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  __m256 a = _mm256_andnot_ps(sign_mask, x);
  __m256 t = FastExpf8(_mm256_mul_ps(a, _mm256_set1_ps(-2.0f)));
  const __m256 one = _mm256_set1_ps(1.0f);
  __m256 r = _mm256_div_ps(_mm256_sub_ps(one, t), _mm256_add_ps(one, t));
  return _mm256_or_ps(r, _mm256_and_ps(sign_mask, x));
}

#endif  // __AVX2__ && __FMA__

}  // namespace goalex::tensor

#endif  // GOALEX_TENSOR_MATHFN_H_
