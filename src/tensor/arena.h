#ifndef GOALEX_TENSOR_ARENA_H_
#define GOALEX_TENSOR_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "tensor/view.h"

namespace goalex::tensor {

/// Bump allocator over one contiguous float block. The inference engine
/// gives each worker thread exactly one Arena, sized once from the compiled
/// plan's peak requirement (a function of max_seq_len), and rewinds it
/// between forward passes — so the steady-state hot path performs zero heap
/// allocations and reuses cache-warm storage across calls.
///
/// Not thread-safe by design: one Arena belongs to one worker.
class Arena {
 public:
  /// Reserves `capacity` floats up front. Capacity 0 is a valid empty arena
  /// (useful as a placeholder before a plan is compiled).
  explicit Arena(size_t capacity = 0) { Reserve(capacity); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Grows capacity to at least `capacity` floats. Invalidates outstanding
  /// pointers; only legal between forward passes (used_ must be 0).
  void Reserve(size_t capacity) {
    if (capacity <= capacity_) return;
    GOALEX_CHECK_EQ(used_, 0u);
    block_ = std::make_unique<float[]>(capacity);
    capacity_ = capacity;
  }

  /// Returns `n` floats of uninitialized scratch. CHECK-fails when the
  /// arena is undersized — plans compute their exact peak requirement, so
  /// this firing means a plan/arena mismatch, not a data-dependent OOM.
  float* Allocate(size_t n) {
    GOALEX_CHECK_MSG(used_ + n <= capacity_,
                     "arena overflow: " << used_ << " + " << n << " > "
                                        << capacity_);
    float* p = block_.get() + used_;
    used_ += n;
    return p;
  }

  /// Allocates a rows x cols matrix view.
  TensorView AllocateMatrix(int64_t rows, int64_t cols) {
    return TensorView(Allocate(static_cast<size_t>(rows * cols)), rows, cols);
  }

  /// Rewinds the bump pointer; storage is retained and reused.
  void Reset() { used_ = 0; }

  size_t capacity() const { return capacity_; }
  size_t used() const { return used_; }
  size_t bytes() const { return capacity_ * sizeof(float); }

 private:
  std::unique_ptr<float[]> block_;
  size_t capacity_ = 0;
  size_t used_ = 0;
};

}  // namespace goalex::tensor

#endif  // GOALEX_TENSOR_ARENA_H_
