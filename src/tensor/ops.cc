#include "tensor/ops.h"

#include <cmath>
#include <memory>

#include "common/check.h"
#include "tensor/forward.h"
#include "tensor/kernels.h"
#include "tensor/mathfn.h"

namespace goalex::tensor {
namespace {

void CheckSameShape(const Var& a, const Var& b) {
  GOALEX_CHECK(a != nullptr && b != nullptr);
  GOALEX_CHECK_MSG(a->value().shape() == b->value().shape(),
                   "shape mismatch: " << a->value().DebugString() << " vs "
                                      << b->value().DebugString());
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  CheckSameShape(a, b);
  Tensor out(a->value().shape());
  AddForward(a->value().data(), b->value().data(), out.data(), out.numel());
  return MakeOp(std::move(out), {a, b}, [](Node& node) {
    const Tensor& g = node.grad();
    for (const Var& input : node.inputs()) {
      if (input->requires_grad()) {
        Axpy(1.0f, g.data(), input->grad().data(), g.numel());
      }
    }
  });
}

Var AddBias(const Var& x, const Var& bias) {
  GOALEX_CHECK(x->value().rank() == 2 && bias->value().rank() == 1);
  int64_t m = x->value().dim(0);
  int64_t n = x->value().dim(1);
  GOALEX_CHECK_EQ(bias->value().dim(0), n);
  Tensor out = x->value().Clone();
  for (int64_t i = 0; i < m; ++i) {
    Axpy(1.0f, bias->value().data(), out.data() + i * n, n);
  }
  return MakeOp(std::move(out), {x, bias}, [m, n](Node& node) {
    const float* g = node.grad().data();
    Var x_in = node.inputs()[0];
    Var b_in = node.inputs()[1];
    if (x_in->requires_grad()) {
      Axpy(1.0f, g, x_in->grad().data(), m * n);
    }
    if (b_in->requires_grad()) {
      float* gb = b_in->grad().data();
      for (int64_t i = 0; i < m; ++i) Axpy(1.0f, g + i * n, gb, n);
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  CheckSameShape(a, b);
  Tensor out(a->value().shape());
  const float* pa = a->value().data();
  const float* pb = b->value().data();
  float* po = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) po[i] = pa[i] * pb[i];
  return MakeOp(std::move(out), {a, b}, [](Node& node) {
    const float* g = node.grad().data();
    Var a_in = node.inputs()[0];
    Var b_in = node.inputs()[1];
    int64_t n = node.grad().numel();
    if (a_in->requires_grad()) {
      float* ga = a_in->grad().data();
      const float* vb = b_in->value().data();
      for (int64_t i = 0; i < n; ++i) ga[i] += g[i] * vb[i];
    }
    if (b_in->requires_grad()) {
      float* gb = b_in->grad().data();
      const float* va = a_in->value().data();
      for (int64_t i = 0; i < n; ++i) gb[i] += g[i] * va[i];
    }
  });
}

Var Scale(const Var& x, float alpha) {
  Tensor out = x->value().Clone();
  float* p = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) p[i] *= alpha;
  return MakeOp(std::move(out), {x}, [alpha](Node& node) {
    Var x_in = node.inputs()[0];
    if (x_in->requires_grad()) {
      Axpy(alpha, node.grad().data(), x_in->grad().data(),
           node.grad().numel());
    }
  });
}

Var MatMul(const Var& a, const Var& b) {
  GOALEX_CHECK(a->value().rank() == 2 && b->value().rank() == 2);
  int64_t m = a->value().dim(0);
  int64_t k = a->value().dim(1);
  GOALEX_CHECK_EQ(b->value().dim(0), k);
  int64_t n = b->value().dim(1);
  Tensor out({m, n});
  Gemm(a->value().data(), b->value().data(), out.data(), m, k, n, false);
  return MakeOp(std::move(out), {a, b}, [m, k, n](Node& node) {
    const float* g = node.grad().data();
    Var a_in = node.inputs()[0];
    Var b_in = node.inputs()[1];
    if (a_in->requires_grad()) {
      // dA[m,k] += G[m,n] * B[k,n]^T
      GemmTransB(g, b_in->value().data(), a_in->grad().data(), m, n, k, true);
    }
    if (b_in->requires_grad()) {
      // dB[k,n] += A[m,k]^T * G[m,n]
      GemmTransA(a_in->value().data(), g, b_in->grad().data(), m, k, n, true);
    }
  });
}

Var Gelu(const Var& x) {
  Tensor out(x->value().shape());
  GeluForward(x->value().data(), out.data(), out.numel());
  return MakeOp(std::move(out), {x}, [](Node& node) {
    Var x_in = node.inputs()[0];
    if (!x_in->requires_grad()) return;
    const float* g = node.grad().data();
    const float* px = x_in->value().data();
    float* gx = x_in->grad().data();
    for (int64_t i = 0; i < node.grad().numel(); ++i) {
      float v = px[i];
      // Same tanh argument and tanh implementation as GeluForward, so the
      // analytic gradient matches the forward the tape actually ran.
      float t = FastTanhf(GeluTanhArg(v));
      float du = kGeluCoef * (1.0f + 3.0f * kGeluCubic * v * v);
      float dgelu = 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * du;
      gx[i] += g[i] * dgelu;
    }
  });
}

Var TanhOp(const Var& x) {
  Tensor out(x->value().shape());
  const float* px = x->value().data();
  float* po = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) po[i] = std::tanh(px[i]);
  Tensor out_copy = out;  // Shared storage; cheap.
  return MakeOp(std::move(out), {x}, [out_copy](Node& node) {
    Var x_in = node.inputs()[0];
    if (!x_in->requires_grad()) return;
    const float* g = node.grad().data();
    const float* t = out_copy.data();
    float* gx = x_in->grad().data();
    for (int64_t i = 0; i < node.grad().numel(); ++i) {
      gx[i] += g[i] * (1.0f - t[i] * t[i]);
    }
  });
}

Var LayerNorm(const Var& x, const Var& gamma, const Var& beta, float eps) {
  GOALEX_CHECK(x->value().rank() == 2);
  int64_t m = x->value().dim(0);
  int64_t n = x->value().dim(1);
  GOALEX_CHECK_EQ(gamma->value().numel(), n);
  GOALEX_CHECK_EQ(beta->value().numel(), n);

  Tensor out({m, n});
  // xhat and 1/std are needed in backward; store them in the closure.
  auto xhat = std::make_shared<Tensor>(Tensor({m, n}));
  auto inv_std = std::make_shared<std::vector<float>>(m);
  LayerNormForward(x->value().data(), gamma->value().data(),
                   beta->value().data(), out.data(), m, n, eps, xhat->data(),
                   inv_std->data());

  return MakeOp(
      std::move(out), {x, gamma, beta}, [m, n, xhat, inv_std](Node& node) {
        const float* g = node.grad().data();
        Var x_in = node.inputs()[0];
        Var gamma_in = node.inputs()[1];
        Var beta_in = node.inputs()[2];
        const float* pg = gamma_in->value().data();
        const float* ph = xhat->data();

        if (gamma_in->requires_grad()) {
          float* gg = gamma_in->grad().data();
          for (int64_t i = 0; i < m; ++i) {
            for (int64_t j = 0; j < n; ++j) {
              gg[j] += g[i * n + j] * ph[i * n + j];
            }
          }
        }
        if (beta_in->requires_grad()) {
          float* gb = beta_in->grad().data();
          for (int64_t i = 0; i < m; ++i) {
            Axpy(1.0f, g + i * n, gb, n);
          }
        }
        if (x_in->requires_grad()) {
          float* gx = x_in->grad().data();
          for (int64_t i = 0; i < m; ++i) {
            // dxhat = dy * gamma; dx = inv_std * (dxhat - mean(dxhat)
            //         - xhat * mean(dxhat * xhat)).
            double sum_dh = 0.0;
            double sum_dh_h = 0.0;
            for (int64_t j = 0; j < n; ++j) {
              float dh = g[i * n + j] * pg[j];
              sum_dh += dh;
              sum_dh_h += dh * ph[i * n + j];
            }
            float mean_dh = static_cast<float>(sum_dh / n);
            float mean_dh_h = static_cast<float>(sum_dh_h / n);
            float inv = (*inv_std)[i];
            for (int64_t j = 0; j < n; ++j) {
              float dh = g[i * n + j] * pg[j];
              gx[i * n + j] +=
                  inv * (dh - mean_dh - ph[i * n + j] * mean_dh_h);
            }
          }
        }
      });
}

Var Dropout(const Var& x, float p, Rng& rng) {
  GOALEX_CHECK(p >= 0.0f && p < 1.0f);
  if (p == 0.0f) return x;
  float keep = 1.0f - p;
  float scale = 1.0f / keep;
  auto mask = std::make_shared<std::vector<float>>(
      static_cast<size_t>(x->value().numel()));
  Tensor out(x->value().shape());
  const float* px = x->value().data();
  float* po = out.data();
  for (int64_t i = 0; i < out.numel(); ++i) {
    float m = rng.NextBernoulli(p) ? 0.0f : scale;
    (*mask)[static_cast<size_t>(i)] = m;
    po[i] = px[i] * m;
  }
  return MakeOp(std::move(out), {x}, [mask](Node& node) {
    Var x_in = node.inputs()[0];
    if (!x_in->requires_grad()) return;
    const float* g = node.grad().data();
    float* gx = x_in->grad().data();
    for (int64_t i = 0; i < node.grad().numel(); ++i) {
      gx[i] += g[i] * (*mask)[static_cast<size_t>(i)];
    }
  });
}

Var EmbeddingGather(const Var& table, const std::vector<int32_t>& ids) {
  GOALEX_CHECK(table->value().rank() == 2);
  int64_t vocab = table->value().dim(0);
  int64_t d = table->value().dim(1);
  Tensor out({static_cast<int64_t>(ids.size()), d});
  const float* pt = table->value().data();
  float* po = out.data();
  for (size_t i = 0; i < ids.size(); ++i) {
    GOALEX_CHECK_MSG(ids[i] >= 0 && ids[i] < vocab,
                     "embedding id " << ids[i] << " out of range " << vocab);
    std::copy(pt + ids[i] * d, pt + (ids[i] + 1) * d, po + i * d);
  }
  auto ids_copy = std::make_shared<std::vector<int32_t>>(ids);
  return MakeOp(std::move(out), {table}, [ids_copy, d](Node& node) {
    Var table_in = node.inputs()[0];
    if (!table_in->requires_grad()) return;
    const float* g = node.grad().data();
    float* gt = table_in->grad().data();
    for (size_t i = 0; i < ids_copy->size(); ++i) {
      Axpy(1.0f, g + i * d, gt + (*ids_copy)[i] * d, d);
    }
  });
}

Var AttentionCore(const Var& q, const Var& k, const Var& v, int32_t heads) {
  GOALEX_CHECK(q->value().rank() == 2);
  CheckSameShape(q, k);
  CheckSameShape(q, v);
  int64_t t = q->value().dim(0);
  int64_t d = q->value().dim(1);
  GOALEX_CHECK_GT(heads, 0);
  GOALEX_CHECK_MSG(d % heads == 0, "d_model " << d << " not divisible by "
                                              << heads << " heads");
  int64_t dh = d / heads;
  float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  // Per-head softmax probabilities, kept for backward: [heads, t, t].
  auto probs = std::make_shared<Tensor>(Tensor({heads, t, t}));

  Tensor out({t, d});
  AttentionScratch scratch;
  AttentionForward(q->value().data(), k->value().data(), v->value().data(),
                   out.data(), t, d, heads, probs->data(), scratch);

  return MakeOp(
      std::move(out), {q, k, v},
      [t, d, dh, heads, scale, probs](Node& node) {
        Var q_in = node.inputs()[0];
        Var k_in = node.inputs()[1];
        Var v_in = node.inputs()[2];
        const float* g = node.grad().data();
        const float* pq = q_in->value().data();
        const float* pk = k_in->value().data();
        const float* pv = v_in->value().data();

        std::vector<float> qa(t * dh), ka(t * dh), va(t * dh);
        std::vector<float> doa(t * dh), dp(t * t), ds(t * t);
        std::vector<float> dqa(t * dh), dka(t * dh), dva(t * dh);

        auto slice_head = [t, d, dh](const float* src, int32_t head,
                                     std::vector<float>& dst) {
          for (int64_t i = 0; i < t; ++i) {
            const float* row = src + i * d + head * dh;
            std::copy(row, row + dh, dst.begin() + i * dh);
          }
        };
        auto unslice_head_add = [t, d, dh](const std::vector<float>& src,
                                           int32_t head, float* dst) {
          for (int64_t i = 0; i < t; ++i) {
            float* row = dst + i * d + head * dh;
            for (int64_t j = 0; j < dh; ++j) row[j] += src[i * dh + j];
          }
        };

        for (int32_t a = 0; a < heads; ++a) {
          slice_head(pq, a, qa);
          slice_head(pk, a, ka);
          slice_head(pv, a, va);
          // dOa: slice of output grad.
          for (int64_t i = 0; i < t; ++i) {
            const float* row = g + i * d + a * dh;
            std::copy(row, row + dh, doa.begin() + i * dh);
          }
          const float* p = probs->data() + a * t * t;
          // dP = dOa * Va^T  [t, t]
          GemmTransB(doa.data(), va.data(), dp.data(), t, dh, t, false);
          // dVa = P^T * dOa  [t, dh]
          GemmTransA(p, doa.data(), dva.data(), t, t, dh, false);
          // dS[i,j] = P[i,j] * (dP[i,j] - sum_l dP[i,l] P[i,l])
          for (int64_t i = 0; i < t; ++i) {
            const float* p_row = p + i * t;
            const float* dp_row = dp.data() + i * t;
            float inner = static_cast<float>(Dot(dp_row, p_row, t));
            float* ds_row = ds.data() + i * t;
            for (int64_t j = 0; j < t; ++j) {
              ds_row[j] = p_row[j] * (dp_row[j] - inner);
            }
          }
          // dQa = scale * dS * Ka ; dKa = scale * dS^T * Qa
          Gemm(ds.data(), ka.data(), dqa.data(), t, t, dh, false);
          GemmTransA(ds.data(), qa.data(), dka.data(), t, t, dh, false);
          for (float& x : dqa) x *= scale;
          for (float& x : dka) x *= scale;

          if (q_in->requires_grad()) {
            unslice_head_add(dqa, a, q_in->grad().data());
          }
          if (k_in->requires_grad()) {
            unslice_head_add(dka, a, k_in->grad().data());
          }
          if (v_in->requires_grad()) {
            unslice_head_add(dva, a, v_in->grad().data());
          }
        }
      });
}

Var CrossEntropy(const Var& logits, const std::vector<int32_t>& targets) {
  GOALEX_CHECK(logits->value().rank() == 2);
  int64_t t = logits->value().dim(0);
  int64_t c = logits->value().dim(1);
  GOALEX_CHECK_EQ(static_cast<size_t>(t), targets.size());

  auto probs = std::make_shared<Tensor>(Tensor({t, c}));
  const float* pl = logits->value().data();
  float* pp = probs->data();
  int64_t valid = 0;
  double loss = 0.0;
  for (int64_t i = 0; i < t; ++i) {
    SoftmaxRow(pl + i * c, pp + i * c, c);
    int32_t y = targets[static_cast<size_t>(i)];
    if (y < 0) continue;
    GOALEX_CHECK_LT(y, c);
    ++valid;
    loss -= std::log(std::max(pp[i * c + y], 1e-12f));
  }
  if (valid > 0) loss /= valid;

  Tensor out = Tensor::FromValues({1}, {static_cast<float>(loss)});
  auto targets_copy = std::make_shared<std::vector<int32_t>>(targets);
  return MakeOp(
      std::move(out), {logits},
      [t, c, valid, probs, targets_copy](Node& node) {
        Var logits_in = node.inputs()[0];
        if (!logits_in->requires_grad() || valid == 0) return;
        float g = node.grad().data()[0];
        float* gl = logits_in->grad().data();
        const float* pp = probs->data();
        float inv = g / static_cast<float>(valid);
        for (int64_t i = 0; i < t; ++i) {
          int32_t y = (*targets_copy)[static_cast<size_t>(i)];
          if (y < 0) continue;
          for (int64_t j = 0; j < c; ++j) {
            gl[i * c + j] += inv * pp[i * c + j];
          }
          gl[i * c + y] -= inv;
        }
      });
}

Var SelectRow(const Var& x, int64_t row) {
  GOALEX_CHECK(x->value().rank() == 2);
  int64_t m = x->value().dim(0);
  int64_t n = x->value().dim(1);
  GOALEX_CHECK(row >= 0 && row < m);
  Tensor out({1, n});
  std::copy(x->value().data() + row * n, x->value().data() + (row + 1) * n,
            out.data());
  return MakeOp(std::move(out), {x}, [row, n](Node& node) {
    Var x_in = node.inputs()[0];
    if (!x_in->requires_grad()) return;
    Axpy(1.0f, node.grad().data(), x_in->grad().data() + row * n, n);
  });
}

Var MeanRows(const Var& x) {
  GOALEX_CHECK(x->value().rank() == 2);
  int64_t m = x->value().dim(0);
  int64_t n = x->value().dim(1);
  GOALEX_CHECK_GT(m, 0);
  Tensor out({1, n});
  MeanRowsForward(x->value().data(), out.data(), m, n);
  float inv = 1.0f / static_cast<float>(m);
  return MakeOp(std::move(out), {x}, [m, n, inv](Node& node) {
    Var x_in = node.inputs()[0];
    if (!x_in->requires_grad()) return;
    const float* g = node.grad().data();
    float* gx = x_in->grad().data();
    for (int64_t i = 0; i < m; ++i) Axpy(inv, g, gx + i * n, n);
  });
}

std::vector<int32_t> ArgmaxRows(const Var& x) {
  GOALEX_CHECK(x->value().rank() == 2);
  int64_t m = x->value().dim(0);
  int64_t n = x->value().dim(1);
  std::vector<int32_t> out(static_cast<size_t>(m));
  const float* px = x->value().data();
  for (int64_t i = 0; i < m; ++i) {
    out[static_cast<size_t>(i)] = ArgmaxRow(px + i * n, n);
  }
  return out;
}

}  // namespace goalex::tensor
