#include "tensor/variable.h"

#include <unordered_set>

#include "common/check.h"

namespace goalex::tensor {

Tensor& Node::grad() {
  if (grad_.numel() == 0 && value_.numel() > 0) {
    grad_ = Tensor::Zeros(value_.shape());
  }
  return grad_;
}

void Node::ZeroGrad() {
  if (grad_.numel() > 0) grad_.Fill(0.0f);
}

Var Leaf(Tensor value, bool requires_grad) {
  Var node = std::make_shared<Node>(std::move(value));
  node->set_requires_grad(requires_grad);
  return node;
}

Var MakeOp(Tensor value, std::vector<Var> inputs,
           std::function<void(Node&)> backward_fn) {
  Var node = std::make_shared<Node>(std::move(value));
  bool needs_grad = false;
  for (const Var& input : inputs) {
    if (input && input->requires_grad()) {
      needs_grad = true;
      break;
    }
  }
  node->set_requires_grad(needs_grad);
  if (needs_grad) {
    node->set_inputs(std::move(inputs));
    node->set_backward_fn(std::move(backward_fn));
  }
  return node;
}

namespace {

// Iterative post-order DFS building a topological order of the subgraph
// reachable from `root` through grad-requiring nodes.
void TopoSort(const Var& root, std::vector<Node*>& order) {
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* node;
    size_t next_input;
  };
  std::vector<Frame> stack;
  if (!root->requires_grad()) return;
  stack.push_back(Frame{root.get(), 0});
  visited.insert(root.get());
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_input < top.node->inputs().size()) {
      Node* child = top.node->inputs()[top.next_input++].get();
      if (child != nullptr && child->requires_grad() &&
          visited.insert(child).second) {
        stack.push_back(Frame{child, 0});
      }
    } else {
      order.push_back(top.node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Var& root) {
  GOALEX_CHECK(root != nullptr);
  GOALEX_CHECK_MSG(root->value().numel() == 1,
                   "Backward root must be scalar, got numel "
                       << root->value().numel());
  if (!root->requires_grad()) return;

  std::vector<Node*> order;
  TopoSort(root, order);

  root->grad().data()[0] += 1.0f;
  // Post-order gives children before parents; iterate reversed so each
  // node's full gradient is ready before it propagates to its inputs.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn()) node->backward_fn()(*node);
  }
}

}  // namespace goalex::tensor
