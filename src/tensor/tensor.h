#ifndef GOALEX_TENSOR_TENSOR_H_
#define GOALEX_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace goalex::tensor {

/// Dense row-major float tensor with shared storage. Copying a Tensor is
/// cheap (shared_ptr copy); use Clone() for a deep copy. Rank is 1, 2, or 3
/// in practice (vectors, matrices, batched matrices).
class Tensor {
 public:
  /// Constructs an empty tensor (numel 0).
  Tensor() = default;

  /// Constructs a zero-filled tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape);

  Tensor(const Tensor&) = default;
  Tensor& operator=(const Tensor&) = default;
  Tensor(Tensor&&) = default;
  Tensor& operator=(Tensor&&) = default;

  /// Factory: zero-filled tensor.
  static Tensor Zeros(std::vector<int64_t> shape);

  /// Factory: constant-filled tensor.
  static Tensor Full(std::vector<int64_t> shape, float value);

  /// Factory: i.i.d. N(0, stddev^2) entries.
  static Tensor RandomNormal(std::vector<int64_t> shape, float stddev,
                             Rng& rng);

  /// Factory: uniform in [-bound, bound].
  static Tensor RandomUniform(std::vector<int64_t> shape, float bound,
                              Rng& rng);

  /// Factory: wraps explicit values; value count must match the shape.
  static Tensor FromValues(std::vector<int64_t> shape,
                           std::vector<float> values);

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(size_t axis) const {
    GOALEX_CHECK_LT(axis, shape_.size());
    return shape_[axis];
  }
  size_t rank() const { return shape_.size(); }
  int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  float* data() { return data_->data(); }
  const float* data() const { return data_->data(); }

  /// 1-D element access.
  float& at(int64_t i) {
    GOALEX_CHECK(rank() == 1);
    return (*data_)[CheckIndex(i, shape_[0])];
  }
  float at(int64_t i) const {
    GOALEX_CHECK(rank() == 1);
    return (*data_)[CheckIndex(i, shape_[0])];
  }

  /// 2-D element access.
  float& at(int64_t i, int64_t j) {
    GOALEX_CHECK(rank() == 2);
    return (*data_)[CheckIndex(i, shape_[0]) * shape_[1] +
                    CheckIndex(j, shape_[1])];
  }
  float at(int64_t i, int64_t j) const {
    GOALEX_CHECK(rank() == 2);
    return (*data_)[CheckIndex(i, shape_[0]) * shape_[1] +
                    CheckIndex(j, shape_[1])];
  }

  /// Deep copy.
  Tensor Clone() const;

  /// Returns a tensor sharing this storage but viewed with a new shape of
  /// equal numel.
  Tensor Reshaped(std::vector<int64_t> new_shape) const;

  /// Sets all entries to `value`.
  void Fill(float value);

  /// Sum of all entries.
  double Sum() const;

  /// True if any entry is NaN or infinite.
  bool HasNonFinite() const;

  /// Debug string: shape + first few values.
  std::string DebugString() const;

 private:
  static int64_t CheckIndex(int64_t i, int64_t bound) {
    GOALEX_CHECK_MSG(i >= 0 && i < bound,
                     "index " << i << " out of range [0, " << bound << ")");
    return i;
  }

  std::vector<int64_t> shape_;
  int64_t numel_ = 0;
  std::shared_ptr<std::vector<float>> data_;
};

}  // namespace goalex::tensor

#endif  // GOALEX_TENSOR_TENSOR_H_
