#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/mathfn.h"

namespace goalex::tensor {

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, sizeof(float) * m * n);
  // ikj loop order: innermost loop streams over contiguous rows of B and C.
  // The accumulate step is an explicit fused multiply-add so each output's
  // rounding sequence is pinned by IEEE semantics, not by whatever
  // contraction the compiler picks for this loop shape — the inference
  // engine's register-blocked linear kernel (tensor/forward.cc) replays
  // the same per-output fma sequence and must land on identical bits.
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t l = 0; l < k; ++l) {
      float a_val = a_row[l];
      if (a_val == 0.0f) continue;
      const float* b_row = b + l * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] = std::fmaf(a_val, b_row[j], c_row[j]);
      }
    }
  }
}

void GemmTransB(const float* a, const float* b, float* c, int64_t m,
                int64_t n, int64_t k, bool accumulate) {
  // C[i][j] = dot(A row i, B row j); both rows are contiguous.
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * n;
    float* c_row = c + i * k;
    for (int64_t j = 0; j < k; ++j) {
      const float* b_row = b + j * n;
      float sum = 0.0f;
      for (int64_t l = 0; l < n; ++l) sum += a_row[l] * b_row[l];
      if (accumulate) {
        c_row[j] += sum;
      } else {
        c_row[j] = sum;
      }
    }
  }
}

void GemmTransA(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, sizeof(float) * k * n);
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    const float* b_row = b + i * n;
    for (int64_t l = 0; l < k; ++l) {
      float a_val = a_row[l];
      if (a_val == 0.0f) continue;
      float* c_row = c + l * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += a_val * b_row[j];
      }
    }
  }
}

void SoftmaxRow(const float* x, float* out, int64_t n) {
  float max_val = -std::numeric_limits<float>::infinity();
  for (int64_t i = 0; i < n; ++i) {
    if (x[i] > kSoftmaxMask / 2 && x[i] > max_val) max_val = x[i];
  }
  if (!std::isfinite(max_val)) {
    // Everything masked: uniform output avoids NaN downstream.
    float uniform = 1.0f / static_cast<float>(n);
    for (int64_t i = 0; i < n; ++i) out[i] = uniform;
    return;
  }
  // Exponentiate every entry with the shared fast exp (vector and scalar
  // tail are bit-identical); masked entries produce a harmless tiny value
  // and are zeroed in the summation pass below.
  int64_t i = 0;
#if defined(__AVX2__) && defined(__FMA__)
  const __m256 shift = _mm256_set1_ps(max_val);
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, FastExpf8(_mm256_sub_ps(_mm256_loadu_ps(x + i), shift)));
  }
#endif
  for (; i < n; ++i) out[i] = FastExpf(x[i] - max_val);
  double sum = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    if (x[j] <= kSoftmaxMask / 2) {
      out[j] = 0.0f;
    } else {
      sum += out[j];
    }
  }
  float inv = static_cast<float>(1.0 / sum);
  for (int64_t j = 0; j < n; ++j) out[j] *= inv;
}

double LogSumExp(const float* x, int64_t n) {
  float max_val = *std::max_element(x, x + n);
  if (!std::isfinite(max_val)) return max_val;
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) sum += std::exp(x[i] - max_val);
  return max_val + std::log(sum);
}

void Axpy(float alpha, const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double Dot(const float* x, const float* y, int64_t n) {
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

}  // namespace goalex::tensor
