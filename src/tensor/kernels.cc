#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/mathfn.h"

namespace goalex::tensor {

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, sizeof(float) * m * n);
  // ikj loop order: innermost loop streams over contiguous rows of B and C.
  // The accumulate step is an explicit fused multiply-add so each output's
  // rounding sequence is pinned by IEEE semantics, not by whatever
  // contraction the compiler picks for this loop shape — the inference
  // engine's register-blocked linear kernel (tensor/forward.cc) replays
  // the same per-output fma sequence and must land on identical bits.
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t l = 0; l < k; ++l) {
      float a_val = a_row[l];
      if (a_val == 0.0f) continue;
      const float* b_row = b + l * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] = std::fmaf(a_val, b_row[j], c_row[j]);
      }
    }
  }
}

void GemmTransB(const float* a, const float* b, float* c, int64_t m,
                int64_t n, int64_t k, bool accumulate) {
  // C[i][j] = dot(A row i, B row j); both rows are contiguous.
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * n;
    float* c_row = c + i * k;
    for (int64_t j = 0; j < k; ++j) {
      const float* b_row = b + j * n;
      float sum = 0.0f;
      for (int64_t l = 0; l < n; ++l) sum += a_row[l] * b_row[l];
      if (accumulate) {
        c_row[j] += sum;
      } else {
        c_row[j] = sum;
      }
    }
  }
}

void GemmTransA(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n, bool accumulate) {
  if (!accumulate) std::memset(c, 0, sizeof(float) * k * n);
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    const float* b_row = b + i * n;
    for (int64_t l = 0; l < k; ++l) {
      float a_val = a_row[l];
      if (a_val == 0.0f) continue;
      float* c_row = c + l * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += a_val * b_row[j];
      }
    }
  }
}

void SoftmaxRow(const float* x, float* out, int64_t n) {
  float max_val = -std::numeric_limits<float>::infinity();
  for (int64_t i = 0; i < n; ++i) {
    if (x[i] > kSoftmaxMask / 2 && x[i] > max_val) max_val = x[i];
  }
  if (!std::isfinite(max_val)) {
    // Everything masked: uniform output avoids NaN downstream.
    float uniform = 1.0f / static_cast<float>(n);
    for (int64_t i = 0; i < n; ++i) out[i] = uniform;
    return;
  }
  // Exponentiate every entry with the shared fast exp (vector and scalar
  // tail are bit-identical); masked entries produce a harmless tiny value
  // and are zeroed in the summation pass below.
  int64_t i = 0;
#if defined(__AVX2__) && defined(__FMA__)
  const __m256 shift = _mm256_set1_ps(max_val);
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, FastExpf8(_mm256_sub_ps(_mm256_loadu_ps(x + i), shift)));
  }
#endif
  for (; i < n; ++i) out[i] = FastExpf(x[i] - max_val);
  double sum = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    if (x[j] <= kSoftmaxMask / 2) {
      out[j] = 0.0f;
    } else {
      sum += out[j];
    }
  }
  float inv = static_cast<float>(1.0 / sum);
  for (int64_t j = 0; j < n; ++j) out[j] *= inv;
}

double LogSumExp(const float* x, int64_t n) {
  float max_val = *std::max_element(x, x + n);
  if (!std::isfinite(max_val)) return max_val;
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) sum += std::exp(x[i] - max_val);
  return max_val + std::log(sum);
}

void Axpy(float alpha, const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double Dot(const float* x, const float* y, int64_t n) {
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) sum += x[i] * y[i];
  return sum;
}

void AccumulateAndClear(float* dst, float* src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    dst[i] += src[i];
    src[i] = 0.0f;
  }
}

void AdamFusedStepScalar(float* w, float* g, float* m, float* v, int64_t n,
                         const AdamStepParams& p) {
  for (int64_t i = 0; i < n; ++i) {
    float grad = g[i] * p.clip_scale;
    float w_i = w[i];
    if (p.decay_scale != 0.0f) w_i = std::fmaf(-p.decay_scale, w_i, w_i);
    float m_i = std::fmaf(p.beta1, m[i], p.one_minus_beta1 * grad);
    float v_i = std::fmaf(p.beta2, v[i], p.one_minus_beta2 * (grad * grad));
    float denom = std::fmaf(std::sqrt(v_i), p.inv_sqrt_bias2, p.eps);
    w[i] = w_i - (p.step_size * m_i) / denom;
    m[i] = m_i;
    v[i] = v_i;
    g[i] = 0.0f;
  }
}

void AdamFusedStep(float* w, float* g, float* m, float* v, int64_t n,
                   const AdamStepParams& p) {
  int64_t i = 0;
#if defined(__AVX2__) && defined(__FMA__)
  // Each intrinsic below mirrors one IEEE operation of the scalar variant
  // in the same order (mul, fnmadd<->fmaf(-a,b,c), fmadd<->fmaf,
  // sqrtps<->sqrtf, divps</>), so every lane lands on the scalar bits.
  const __m256 clip = _mm256_set1_ps(p.clip_scale);
  const __m256 beta1 = _mm256_set1_ps(p.beta1);
  const __m256 om_beta1 = _mm256_set1_ps(p.one_minus_beta1);
  const __m256 beta2 = _mm256_set1_ps(p.beta2);
  const __m256 om_beta2 = _mm256_set1_ps(p.one_minus_beta2);
  const __m256 inv_sqrt_bias2 = _mm256_set1_ps(p.inv_sqrt_bias2);
  const __m256 eps = _mm256_set1_ps(p.eps);
  const __m256 step = _mm256_set1_ps(p.step_size);
  const __m256 decay = _mm256_set1_ps(p.decay_scale);
  const __m256 zero = _mm256_setzero_ps();
  const bool has_decay = p.decay_scale != 0.0f;
  for (; i + 8 <= n; i += 8) {
    __m256 grad = _mm256_mul_ps(_mm256_loadu_ps(g + i), clip);
    __m256 wv = _mm256_loadu_ps(w + i);
    if (has_decay) wv = _mm256_fnmadd_ps(decay, wv, wv);
    __m256 mv = _mm256_fmadd_ps(beta1, _mm256_loadu_ps(m + i),
                                _mm256_mul_ps(om_beta1, grad));
    __m256 vv =
        _mm256_fmadd_ps(beta2, _mm256_loadu_ps(v + i),
                        _mm256_mul_ps(om_beta2, _mm256_mul_ps(grad, grad)));
    __m256 denom = _mm256_fmadd_ps(_mm256_sqrt_ps(vv), inv_sqrt_bias2, eps);
    wv = _mm256_sub_ps(wv, _mm256_div_ps(_mm256_mul_ps(step, mv), denom));
    _mm256_storeu_ps(w + i, wv);
    _mm256_storeu_ps(m + i, mv);
    _mm256_storeu_ps(v + i, vv);
    _mm256_storeu_ps(g + i, zero);
  }
#endif
  AdamFusedStepScalar(w + i, g + i, m + i, v + i, n - i, p);
}

double GradSquaredSumScalar(const float* g, int64_t n) {
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  for (int64_t i = 0; i < n; ++i) {
    double d = static_cast<double>(g[i]);
    acc[i & 3] = std::fma(d, d, acc[i & 3]);
  }
  return ((acc[0] + acc[1]) + acc[2]) + acc[3];
}

double GradSquaredSum(const float* g, int64_t n) {
#if defined(__AVX2__) && defined(__FMA__)
  // 4 double lanes; element i accumulates into lane i mod 4 exactly as the
  // scalar variant does, and the final combine is in lane order.
  __m256d acc = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d d = _mm256_cvtps_pd(_mm_loadu_ps(g + i));
    acc = _mm256_fmadd_pd(d, d, acc);
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (; i < n; ++i) {
    double d = static_cast<double>(g[i]);
    lane[i & 3] = std::fma(d, d, lane[i & 3]);
  }
  return ((lane[0] + lane[1]) + lane[2]) + lane[3];
#else
  return GradSquaredSumScalar(g, n);
#endif
}

}  // namespace goalex::tensor
