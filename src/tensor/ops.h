#ifndef GOALEX_TENSOR_OPS_H_
#define GOALEX_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/variable.h"

namespace goalex::tensor {

/// Differentiable ops over Vars. All ops validate shapes with CHECKs (shape
/// mismatches are programming errors, not data errors).

/// Elementwise sum; shapes must match.
Var Add(const Var& a, const Var& b);

/// Adds a bias row vector to every row: x[m,n] + bias[n].
Var AddBias(const Var& x, const Var& bias);

/// Elementwise product; shapes must match.
Var Mul(const Var& a, const Var& b);

/// Multiplies by a compile-time constant scalar.
Var Scale(const Var& x, float alpha);

/// Matrix product: a[m,k] * b[k,n] -> [m,n].
Var MatMul(const Var& a, const Var& b);

/// GELU activation (tanh approximation), elementwise.
Var Gelu(const Var& x);

/// Tanh activation, elementwise.
Var TanhOp(const Var& x);

/// Layer normalization over the last axis of x[m,n] with learned gain
/// gamma[n] and offset beta[n].
Var LayerNorm(const Var& x, const Var& gamma, const Var& beta,
              float eps = 1e-5f);

/// Inverted dropout: zeroes entries with probability p and scales survivors
/// by 1/(1-p). This is a training-only op — evaluation paths simply never
/// call it (see nn/transformer.h: the eval Forward overloads have no Rng at
/// all, so dropout is structurally unreachable at inference time).
Var Dropout(const Var& x, float p, Rng& rng);

/// Gathers rows of `table`[V,d] at `ids`, producing [ids.size(), d].
/// Gradient scatters back into the table.
Var EmbeddingGather(const Var& table, const std::vector<int32_t>& ids);

/// Multi-head scaled dot-product self-attention core over one sequence:
/// q,k,v are [T,d] with d divisible by `heads`; returns the concatenated
/// per-head attention outputs [T,d] (no output projection — compose with
/// MatMul for that).
Var AttentionCore(const Var& q, const Var& k, const Var& v, int32_t heads);

/// Mean token-level cross entropy: logits[T,C], targets[t] in [0,C) or -1
/// to ignore position t. Returns a scalar Var. If every position is ignored
/// the loss is 0 with zero gradient.
Var CrossEntropy(const Var& logits, const std::vector<int32_t>& targets);

/// Selects one row of x[m,n] as a [1,n] matrix (used for classification
/// heads reading the <s> position).
Var SelectRow(const Var& x, int64_t row);

/// Mean over rows of x[m,n] -> [1,n].
Var MeanRows(const Var& x);

/// Returns argmax over the last axis for each row of a [m,n] value tensor
/// (not differentiable; reads the Var's value).
std::vector<int32_t> ArgmaxRows(const Var& x);

}  // namespace goalex::tensor

#endif  // GOALEX_TENSOR_OPS_H_
