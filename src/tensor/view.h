#ifndef GOALEX_TENSOR_VIEW_H_
#define GOALEX_TENSOR_VIEW_H_

#include <cstdint>

#include "common/check.h"

namespace goalex::tensor {

/// Non-owning view of a dense row-major float matrix. The graph-free
/// inference engine moves these around instead of Tensors: no shared_ptr
/// traffic, no allocation, no zero-fill — the underlying storage belongs to
/// a parameter tensor (borrowed weights) or to a scratch Arena.
class TensorView {
 public:
  TensorView() = default;
  TensorView(float* data, int64_t rows, int64_t cols)
      : data_(data), rows_(rows), cols_(cols) {}

  float* data() const { return data_; }
  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t numel() const { return rows_ * cols_; }
  bool empty() const { return numel() == 0; }

  float* row(int64_t i) const {
    GOALEX_CHECK(i >= 0 && i < rows_);
    return data_ + i * cols_;
  }

  float at(int64_t i, int64_t j) const {
    GOALEX_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i * cols_ + j];
  }

  /// The first `rows` rows of this view (same storage).
  TensorView Rows(int64_t rows) const {
    GOALEX_CHECK(rows >= 0 && rows <= rows_);
    return TensorView(data_, rows, cols_);
  }

 private:
  float* data_ = nullptr;
  int64_t rows_ = 0;
  int64_t cols_ = 0;
};

/// Read-only counterpart of TensorView (weight matrices borrowed from the
/// trained module).
class ConstTensorView {
 public:
  ConstTensorView() = default;
  ConstTensorView(const float* data, int64_t rows, int64_t cols)
      : data_(data), rows_(rows), cols_(cols) {}
  /* implicit */ ConstTensorView(const TensorView& v)  // NOLINT
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()) {}

  const float* data() const { return data_; }
  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t numel() const { return rows_ * cols_; }

  const float* row(int64_t i) const {
    GOALEX_CHECK(i >= 0 && i < rows_);
    return data_ + i * cols_;
  }

 private:
  const float* data_ = nullptr;
  int64_t rows_ = 0;
  int64_t cols_ = 0;
};

}  // namespace goalex::tensor

#endif  // GOALEX_TENSOR_VIEW_H_
