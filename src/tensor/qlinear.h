#ifndef GOALEX_TENSOR_QLINEAR_H_
#define GOALEX_TENSOR_QLINEAR_H_

#include <cstdint>
#include <vector>

namespace goalex::tensor {

/// int8 quantized linear layers (DESIGN.md §14). Weights are quantized once
/// at load with per-output-channel scales; activations are quantized per
/// row on the fly (asymmetric, [0, 127]); accumulation runs in int32 and
/// dequantizes to float before the bias and epilogue, so everything around
/// a quantized layer (layer norm, attention, residuals) stays float.
///
/// Unlike the float kernels these are approximations — outputs track the
/// float path within a small tolerance rather than bit-identically.
/// infer_packed_test pins the tolerance; the bench smoke gate pins
/// end-to-end extraction F1 against float.

/// Elementwise epilogue fused into the quantized kernels' dequant stores.
enum class LinearEpilogue {
  kNone,      ///< out = x W + b
  kGelu,      ///< out = gelu(x W + b)
  kResidual,  ///< out = residual + (x W + b)
};

/// One quantized affine layer. Codes use symmetric per-output-channel
/// scales scale[j] = max|W[:, j]| / 127 and are repacked into the
/// [in_groups][out][4] layout the SIMD kernel consumes (groups of four
/// consecutive inputs per output column, zero-padded past `in`); colsum[j]
/// carries the column code sum for the activation zero-point correction.
struct QuantizedLinear {
  int64_t in = 0;
  int64_t out = 0;
  int64_t in_groups = 0;      ///< ceil(in / 4)
  std::vector<int8_t> codes;  ///< [in_groups * out * 4]
  std::vector<float> scale;   ///< [out]
  std::vector<float> colsum;  ///< [out]
  std::vector<float> bias;    ///< [out], float (never quantized)
};

/// Quantizes w[in, out] (row-major, LinearForward's layout) + bias.
QuantizedLinear QuantizeLinear(const float* w, const float* bias, int64_t in,
                               int64_t out);

/// Quantized LinearForward over x[m, in]: per row, x is quantized to u8
/// codes with min/scale, the int8 GEMM accumulates exactly in int32, and
/// out[i, j] = sx·scale[j]·acc + min·scale[j]·colsum[j] + bias[j], then the
/// epilogue. `residual` is required (shaped like out) iff epilogue is
/// kResidual, ignored otherwise.
void QuantizedLinearForward(const float* x, const QuantizedLinear& q,
                            float* out, int64_t m, LinearEpilogue epilogue,
                            const float* residual);

/// The q/k/v projection trio sharing one activation quantization per row
/// (all three consume the same layer-normed input). Equivalent to three
/// QuantizedLinearForward(…, kNone) calls, one row quantize instead of
/// three. All three layers must share `in` and `out`.
void QuantizedQkvForward(const float* x, const QuantizedLinear& wq,
                         const QuantizedLinear& wk, const QuantizedLinear& wv,
                         float* out_q, float* out_k, float* out_v, int64_t m);

}  // namespace goalex::tensor

#endif  // GOALEX_TENSOR_QLINEAR_H_
