#ifndef GOALEX_SERVE_SERVICE_H_
#define GOALEX_SERVE_SERVICE_H_

#include <memory>

#include "core/config.h"
#include "core/extractor.h"
#include "runtime/thread_pool.h"
#include "serve/request.h"
#include "serve/scheduler.h"

namespace goalex::serve {

/// Extraction-as-a-service: binds the continuous-batching Scheduler to a
/// trained DetailExtractor. Each formed batch runs through
/// DetailExtractor::ExtractBatch on a persistent worker pool
/// (config.num_threads workers; 1 = inference inline on the scheduler
/// thread) — the same staged/packed pipeline as ExtractAll, so a served
/// request returns byte-identical records to the batch path, and with
/// packed inference on the batch's clauses share padding-free packed
/// chunks instead of one plan execution each.
///
/// The extractor must outlive the service and stay immutable while it is
/// serving (the same contract concurrent ExtractAll callers already
/// honor: inference is const and race-free after Train()/Load()).
class ExtractionService {
 public:
  /// `extractor` must be trained. `config` must Validate().
  ExtractionService(const core::DetailExtractor* extractor,
                    const core::ServeConfig& config);

  /// Submits one objective for extraction. See Scheduler::Submit for the
  /// admission/shed contract.
  StatusOr<ResultFuture> Submit(data::Objective objective,
                                Priority priority = Priority::kInteractive) {
    return scheduler_->Submit(std::move(objective), priority);
  }

  /// Stops accepting, drains admitted requests, joins. Idempotent.
  void Stop() { scheduler_->Stop(); }

  ServeStats stats() const { return scheduler_->stats(); }
  size_t queue_depth() const { return scheduler_->queue_depth(); }
  const core::ServeConfig& config() const { return scheduler_->config(); }
  Scheduler& scheduler() { return *scheduler_; }
  const Scheduler& scheduler() const { return *scheduler_; }

 private:
  const core::DetailExtractor* extractor_;  ///< Not owned.
  /// Declared before scheduler_: the scheduler thread dispatches batches
  /// onto this pool, so it must still exist while the scheduler drains.
  std::unique_ptr<runtime::ThreadPool> pool_;
  std::unique_ptr<Scheduler> scheduler_;  ///< Last member: stops first.
};

}  // namespace goalex::serve

#endif  // GOALEX_SERVE_SERVICE_H_
