#ifndef GOALEX_SERVE_WORKLOAD_H_
#define GOALEX_SERVE_WORKLOAD_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/schema.h"
#include "serve/request.h"
#include "serve/scheduler.h"

namespace goalex::serve {

/// Request text size classes, mirroring how real reports mix one-line
/// targets with paragraph-length objectives.
enum class SizeClass : uint8_t {
  kShort = 0,   ///< One clause: "reduce CO2 emissions by 30% by 2030".
  kMedium = 1,  ///< Adds a baseline/qualifier clause.
  kLong = 2,    ///< Adds boilerplate sentences around the objective.
};

const char* SizeClassName(SizeClass size_class);

/// Configuration of the synthetic serving workload: an open-loop arrival
/// process (requests fire at their scheduled time regardless of service
/// progress — the only honest way to measure tail latency under load)
/// with Poisson inter-arrivals, optional burst episodes, a request-size
/// mix, and a priority mix.
struct TrafficConfig {
  double rate_qps = 200.0;   ///< Mean arrival rate outside bursts.
  double duration_s = 2.0;   ///< Trace length in arrival time.
  uint64_t seed = 42;

  /// Burst episodes: every `burst_period_s` of trace time, the arrival
  /// rate is multiplied by `burst_multiplier` for `burst_duration_s`.
  /// period <= 0 disables bursts.
  double burst_period_s = 0.0;
  double burst_duration_s = 0.25;
  double burst_multiplier = 4.0;

  /// Fraction of requests submitted at interactive priority.
  double interactive_fraction = 0.7;

  /// Relative weights of the request-size mix.
  double short_weight = 0.5;
  double medium_weight = 0.35;
  double long_weight = 0.15;
};

/// One scheduled request of a synthetic trace.
struct TimedRequest {
  double arrival_s = 0.0;  ///< Offset from trace start.
  Priority priority = Priority::kInteractive;
  SizeClass size_class = SizeClass::kShort;
  data::Objective objective;
};

/// Expands a milvus-scalar_bench-style template: every "{name}" is
/// replaced by a uniformly chosen entry of pools["name"]. Unknown names
/// and unterminated braces are left verbatim.
std::string ExpandTemplate(
    const std::string& template_text,
    const std::map<std::string, std::vector<std::string>>& pools, Rng& rng);

/// Generates one templated objective text of the given size class.
std::string TemplatedObjectiveText(SizeClass size_class, Rng& rng);

/// Generates the full trace: arrival times (open-loop Poisson with burst
/// episodes), priorities, size classes, and objective texts. Arrival
/// times are strictly increasing; the trace is deterministic per config.
std::vector<TimedRequest> GenerateTrace(const TrafficConfig& config);

/// Rank-based percentile of an ascending-sorted sample; q in [0, 1],
/// 0 when the sample is empty.
double SortedPercentile(const std::vector<double>& sorted, double q);

/// Result of replaying a trace against a scheduler.
struct ReplayResult {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t failed = 0;     ///< Admitted but completed with an error.
  double wall_s = 0.0;     ///< Submit of first request to last completion.
  double offered_qps = 0.0;
  double completed_qps = 0.0;
  /// End-to-end latencies (seconds) of successful completions, sorted —
  /// all classes together and per priority class. The split matters under
  /// overload: bulk schedules strictly after interactive, so its tail is
  /// unbounded by design while the interactive tail is what the SLO
  /// protects.
  std::vector<double> latencies_s;
  std::vector<double> interactive_latencies_s;
  std::vector<double> bulk_latencies_s;

  double LatencyPercentile(double q) const;  ///< Over all classes.
  double InteractiveLatencyPercentile(double q) const;
};

/// Replays `trace` open-loop against `scheduler`: a producer walks the
/// arrival schedule submitting at (trace start + arrival_s) without ever
/// waiting on completions, then all futures are collected. Shed requests
/// count toward offered load but not latency.
ReplayResult ReplayTrace(Scheduler& scheduler,
                         const std::vector<TimedRequest>& trace);

}  // namespace goalex::serve

#endif  // GOALEX_SERVE_WORKLOAD_H_
