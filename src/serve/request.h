#ifndef GOALEX_SERVE_REQUEST_H_
#define GOALEX_SERVE_REQUEST_H_

#include <chrono>
#include <cstdint>
#include <future>

#include "common/status.h"
#include "data/schema.h"

namespace goalex::serve {

/// Request priority classes. Interactive requests (a user waiting on a
/// dashboard) are always dequeued before bulk requests (corpus backfill,
/// re-extraction jobs) and keep admission headroom under load.
enum class Priority : uint8_t {
  kInteractive = 0,
  kBulk = 1,
};

inline constexpr int kPriorityCount = 2;

/// "interactive" / "bulk".
const char* PriorityName(Priority priority);

/// A completed extraction as delivered to the caller: the record plus the
/// end-to-end latency (enqueue to completion) the scheduler measured for
/// this request, so open-loop clients can build latency distributions
/// without timing future.get() themselves.
struct Completion {
  data::DetailRecord record;
  double latency_seconds = 0.0;
  Priority priority = Priority::kInteractive;
};

/// The caller's handle on an admitted request.
using ResultFuture = std::future<StatusOr<Completion>>;

/// One queued request. Owned by the producer until the lock-free push
/// completes, by the scheduler thereafter; the scheduler deletes it after
/// fulfilling the promise.
struct Request {
  data::Objective objective;
  Priority priority = Priority::kInteractive;
  std::promise<StatusOr<Completion>> promise;
  std::chrono::steady_clock::time_point enqueue_time;
  Request* next = nullptr;  ///< Intrusive link of the MPSC queue.
};

}  // namespace goalex::serve

#endif  // GOALEX_SERVE_REQUEST_H_
