#include "serve/service.h"

#include <utility>
#include <vector>

#include "common/check.h"

namespace goalex::serve {

ExtractionService::ExtractionService(const core::DetailExtractor* extractor,
                                     const core::ServeConfig& config)
    : extractor_(extractor) {
  GOALEX_CHECK(extractor_ != nullptr);
  GOALEX_CHECK_MSG(extractor_->trained(),
                   "ExtractionService needs a trained extractor");
  pool_ = std::make_unique<runtime::ThreadPool>(config.num_threads);
  scheduler_ = std::make_unique<Scheduler>(
      config,
      [this](const std::vector<const data::Objective*>& batch) {
        return extractor_->ExtractBatch(batch, pool_.get());
      });
}

}  // namespace goalex::serve
