#include "serve/scheduler.h"

#include <chrono>
#include <exception>
#include <string>
#include <utility>

#include "common/check.h"

namespace goalex::serve {
namespace {

using SteadyClock = std::chrono::steady_clock;

SteadyClock::duration MillisecondsToDuration(double ms) {
  return std::chrono::duration_cast<SteadyClock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

double SecondsBetween(SteadyClock::time_point from,
                      SteadyClock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

const char* PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBulk:
      return "bulk";
  }
  return "unknown";
}

AdmissionController::AdmissionController(const core::ServeConfig& config)
    : max_queue_depth_(config.max_queue_depth),
      max_queue_delay_seconds_(config.EffectiveQueueDelaySeconds()),
      alpha_(config.service_time_ema_alpha) {}

Status AdmissionController::Admit(size_t queue_depth,
                                  Priority priority) const {
  // Bulk requests are held to half of both bounds so interactive traffic
  // keeps admission headroom while the service is loaded with backfill.
  const double fraction = priority == Priority::kBulk ? 0.5 : 1.0;
  const double depth_bound =
      static_cast<double>(max_queue_depth_) * fraction;
  if (static_cast<double>(queue_depth) >= depth_bound) {
    return ResourceExhaustedError(
        std::string("serve: queue depth ") + std::to_string(queue_depth) +
        " at " + PriorityName(priority) + " bound " +
        std::to_string(static_cast<int64_t>(depth_bound)));
  }
  const double service_seconds = EstimatedServiceSeconds();
  if (max_queue_delay_seconds_ > 0.0 && service_seconds > 0.0) {
    const double estimated_delay =
        static_cast<double>(queue_depth) * service_seconds;
    if (estimated_delay > max_queue_delay_seconds_ * fraction) {
      return ResourceExhaustedError(
          "serve: estimated queueing delay " +
          std::to_string(estimated_delay * 1000.0) + " ms exceeds the " +
          PriorityName(priority) + " bound " +
          std::to_string(max_queue_delay_seconds_ * fraction * 1000.0) +
          " ms");
    }
  }
  return Status::Ok();
}

void AdmissionController::ObserveBatch(double batch_seconds,
                                       size_t batch_size) {
  if (batch_size == 0) return;
  const double per_request = batch_seconds / static_cast<double>(batch_size);
  double expected = ema_service_seconds_.load(std::memory_order_relaxed);
  double next;
  do {
    next = expected == 0.0 ? per_request
                           : alpha_ * per_request + (1.0 - alpha_) * expected;
  } while (!ema_service_seconds_.compare_exchange_weak(
      expected, next, std::memory_order_relaxed));
}

Scheduler::Scheduler(const core::ServeConfig& config, BatchHandler handler)
    : config_(config),
      handler_(std::move(handler)),
      batch_deadline_(MillisecondsToDuration(config.batch_deadline_ms)),
      admission_(config) {
  GOALEX_CHECK(handler_ != nullptr);
  Status valid = config_.Validate();
  GOALEX_CHECK_MSG(valid.ok(), "invalid ServeConfig: " << valid);
  ResolveMetrics();
  start_time_ = SteadyClock::now();
  scheduler_thread_ = std::thread([this] { Loop(); });
}

Scheduler::~Scheduler() { Stop(); }

void Scheduler::ResolveMetrics() {
  if (!obs::Active()) return;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  request_seconds_ = registry.GetLatencyHistogram("serve.request.seconds");
  request_seconds_by_priority_[static_cast<size_t>(Priority::kInteractive)] =
      registry.GetLatencyHistogram("serve.request.interactive.seconds");
  request_seconds_by_priority_[static_cast<size_t>(Priority::kBulk)] =
      registry.GetLatencyHistogram("serve.request.bulk.seconds");
  queue_wait_seconds_ =
      registry.GetLatencyHistogram("serve.queue.wait.seconds");
  batch_size_hist_ =
      registry.GetHistogram("serve.batch.size", obs::DefaultSizeBounds());
  admitted_counter_ = registry.GetCounter("serve.admitted");
  shed_counter_ = registry.GetCounter("serve.shed");
  completed_counter_ = registry.GetCounter("serve.completed");
  close_max_size_counter_ =
      registry.GetCounter("serve.batch.close.max_size");
  close_deadline_counter_ =
      registry.GetCounter("serve.batch.close.deadline");
  close_drain_counter_ = registry.GetCounter("serve.batch.close.drain");
  queue_depth_gauge_ = registry.GetGauge("serve.queue_depth");
  qps_gauge_ = registry.GetGauge("serve.qps");
}

StatusOr<ResultFuture> Scheduler::Submit(data::Objective objective,
                                         Priority priority) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  // The in_submit_ guard lets Stop() wait out every Submit that already
  // passed the accept gate, so no push can race past the shutdown drain.
  in_submit_.fetch_add(1, std::memory_order_acq_rel);
  if (!accepting_.load(std::memory_order_acquire)) {
    in_submit_.fetch_sub(1, std::memory_order_release);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return FailedPreconditionError("serve: scheduler is stopped");
  }
  Status admit = admission_.Admit(queue_.depth(), priority);
  if (!admit.ok()) {
    in_submit_.fetch_sub(1, std::memory_order_release);
    shed_.fetch_add(1, std::memory_order_relaxed);
    if (shed_counter_ != nullptr && obs::Enabled()) {
      shed_counter_->Increment();
    }
    return admit;
  }

  Request* request = new Request;
  request->objective = std::move(objective);
  request->priority = priority;
  request->enqueue_time = SteadyClock::now();
  ResultFuture future = request->promise.get_future();
  queue_.Push(request);
  in_submit_.fetch_sub(1, std::memory_order_release);
  admitted_.fetch_add(1, std::memory_order_relaxed);
  if (admitted_counter_ != nullptr && obs::Enabled()) {
    admitted_counter_->Increment();
    queue_depth_gauge_->Set(static_cast<double>(queue_.depth()));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_signal_ = true;
  }
  wake_cv_.notify_one();
  return future;
}

void Scheduler::Loop() {
  std::vector<Request*> batch;
  const size_t max_batch = static_cast<size_t>(config_.max_batch_size);
  for (;;) {
    queue_.Drain();
    bool stopping;
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      stopping = stop_;
    }
    if (stopping) {
      // A Submit may have pushed between the drain above and the stop_
      // read. Stop() sets stop_ only after every in-flight Submit's push
      // has landed, so one more drain — strictly after observing stop_ —
      // is guaranteed to see every request that will ever exist; exit
      // only when it leaves nothing behind.
      queue_.Drain();
      if (queue_.ready_size() == 0) break;
    }
    const size_t ready = queue_.ready_size();

    if (ready == 0) {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait(lock, [this] { return wake_signal_ || stop_; });
      wake_signal_ = false;
      continue;
    }

    const SteadyClock::time_point now = SteadyClock::now();
    const SteadyClock::time_point deadline =
        queue_.OldestReadyEnqueueTime() + batch_deadline_;
    const bool full = ready >= max_batch;
    if (!full && now < deadline && !stopping) {
      // Keep the batch forming: sleep until the deadline or the next
      // arrival, then re-evaluate both triggers.
      std::unique_lock<std::mutex> lock(wake_mu_);
      if (!wake_signal_ && !stop_) wake_cv_.wait_until(lock, deadline);
      wake_signal_ = false;
      continue;
    }

    CloseTrigger trigger;
    if (full) {
      trigger = CloseTrigger::kMaxSize;
    } else if (now >= deadline) {
      trigger = CloseTrigger::kDeadline;
    } else {
      trigger = CloseTrigger::kDrain;  // Shutdown flush of a partial batch.
    }

    batch.clear();
    while (batch.size() < max_batch) {
      Request* request = queue_.Pop();
      if (request == nullptr) break;
      batch.push_back(request);
    }
    if (queue_depth_gauge_ != nullptr && obs::Enabled()) {
      queue_depth_gauge_->Set(static_cast<double>(queue_.depth()));
    }
    RunBatch(batch, trigger);
  }
}

void Scheduler::RunBatch(std::vector<Request*>& batch, CloseTrigger trigger) {
  if (batch.empty()) return;
  const SteadyClock::time_point batch_start = SteadyClock::now();

  std::vector<const data::Objective*> objectives;
  objectives.reserve(batch.size());
  for (const Request* request : batch) {
    objectives.push_back(&request->objective);
  }

  std::vector<data::DetailRecord> records;
  Status failure;
  try {
    records = handler_(objectives);
    if (records.size() != batch.size()) {
      failure = InternalError(
          "serve: batch handler returned " + std::to_string(records.size()) +
          " records for " + std::to_string(batch.size()) + " requests");
    }
  } catch (const std::exception& e) {
    failure = InternalError(std::string("serve: batch handler threw: ") +
                            e.what());
  } catch (...) {
    failure = InternalError("serve: batch handler threw");
  }

  const SteadyClock::time_point batch_end = SteadyClock::now();
  // Only successful batches feed the service-time EMA: a fast-failing
  // handler would otherwise drive the estimate toward zero and disable
  // delay-based shedding exactly while the service is erroring.
  if (failure.ok()) {
    admission_.ObserveBatch(SecondsBetween(batch_start, batch_end),
                            batch.size());
  }

  // All accounting lands before any promise is fulfilled, so stats() read
  // after a future resolves already reflects that request's batch.
  const bool instrument = request_seconds_ != nullptr && obs::Enabled();
  batches_.fetch_add(1, std::memory_order_relaxed);
  switch (trigger) {
    case CloseTrigger::kMaxSize:
      closed_max_size_.fetch_add(1, std::memory_order_relaxed);
      break;
    case CloseTrigger::kDeadline:
      closed_deadline_.fetch_add(1, std::memory_order_relaxed);
      break;
    case CloseTrigger::kDrain:
      closed_drain_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  completed_.fetch_add(batch.size(), std::memory_order_relaxed);
  if (!failure.ok()) {
    failed_.fetch_add(batch.size(), std::memory_order_relaxed);
  }
  if (instrument) {
    batch_size_hist_->Observe(static_cast<double>(batch.size()));
    completed_counter_->Increment(batch.size());
    switch (trigger) {
      case CloseTrigger::kMaxSize:
        close_max_size_counter_->Increment();
        break;
      case CloseTrigger::kDeadline:
        close_deadline_counter_->Increment();
        break;
      case CloseTrigger::kDrain:
        close_drain_counter_->Increment();
        break;
    }
    const double elapsed = SecondsBetween(start_time_, batch_end);
    if (elapsed > 0.0) {
      qps_gauge_->Set(
          static_cast<double>(completed_.load(std::memory_order_relaxed)) /
          elapsed);
    }
  }

  for (size_t i = 0; i < batch.size(); ++i) {
    Request* request = batch[i];
    const double latency =
        SecondsBetween(request->enqueue_time, batch_end);
    if (instrument) {
      request_seconds_->Observe(latency);
      request_seconds_by_priority_[static_cast<size_t>(request->priority)]
          ->Observe(latency);
      queue_wait_seconds_->Observe(
          SecondsBetween(request->enqueue_time, batch_start));
    }
    if (failure.ok()) {
      Completion completion;
      completion.record = std::move(records[i]);
      completion.latency_seconds = latency;
      completion.priority = request->priority;
      request->promise.set_value(std::move(completion));
    } else {
      request->promise.set_value(failure);
    }
    delete request;
  }
}

void Scheduler::Stop() {
  std::call_once(stop_once_, [this] {
    accepting_.store(false, std::memory_order_release);
    // Wait out Submits already past the accept gate so every push that
    // can ever land is visible before the scheduler's shutdown drain.
    while (in_submit_.load(std::memory_order_acquire) > 0) {
      std::this_thread::yield();
    }
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      stop_ = true;
      wake_signal_ = true;
    }
    wake_cv_.notify_all();
    if (scheduler_thread_.joinable()) scheduler_thread_.join();
  });
}

ServeStats Scheduler::stats() const {
  ServeStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.admitted = admitted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.closed_max_size = closed_max_size_.load(std::memory_order_relaxed);
  stats.closed_deadline = closed_deadline_.load(std::memory_order_relaxed);
  stats.closed_drain = closed_drain_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace goalex::serve
