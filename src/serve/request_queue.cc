#include "serve/request_queue.h"

#include "common/check.h"

namespace goalex::serve {

RequestQueue::~RequestQueue() {
  Drain();
  for (std::deque<Request*>& fifo : ready_) {
    for (Request* request : fifo) delete request;
    fifo.clear();
  }
}

void RequestQueue::Push(Request* request) {
  depth_.fetch_add(1, std::memory_order_relaxed);
  Request* head = incoming_.load(std::memory_order_relaxed);
  do {
    request->next = head;
  } while (!incoming_.compare_exchange_weak(head, request,
                                            std::memory_order_release,
                                            std::memory_order_relaxed));
}

size_t RequestQueue::Drain() {
  Request* chain = incoming_.exchange(nullptr, std::memory_order_acquire);
  if (chain == nullptr) return 0;
  // The stack is newest-first; reverse into a temporary oldest-first chain
  // before appending so each FIFO stays in arrival order.
  Request* reversed = nullptr;
  size_t moved = 0;
  while (chain != nullptr) {
    Request* next = chain->next;
    chain->next = reversed;
    reversed = chain;
    chain = next;
    ++moved;
  }
  while (reversed != nullptr) {
    Request* next = reversed->next;
    reversed->next = nullptr;
    ready_[static_cast<size_t>(reversed->priority)].push_back(reversed);
    reversed = next;
  }
  return moved;
}

Request* RequestQueue::Pop() {
  for (std::deque<Request*>& fifo : ready_) {
    if (!fifo.empty()) {
      Request* request = fifo.front();
      fifo.pop_front();
      depth_.fetch_sub(1, std::memory_order_relaxed);
      return request;
    }
  }
  return nullptr;
}

size_t RequestQueue::ready_size() const {
  size_t total = 0;
  for (const std::deque<Request*>& fifo : ready_) total += fifo.size();
  return total;
}

std::chrono::steady_clock::time_point RequestQueue::OldestReadyEnqueueTime()
    const {
  GOALEX_CHECK(ready_size() > 0);
  bool found = false;
  std::chrono::steady_clock::time_point oldest{};
  for (const std::deque<Request*>& fifo : ready_) {
    if (fifo.empty()) continue;
    if (!found || fifo.front()->enqueue_time < oldest) {
      oldest = fifo.front()->enqueue_time;
      found = true;
    }
  }
  return oldest;
}

}  // namespace goalex::serve
