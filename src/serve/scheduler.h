#ifndef GOALEX_SERVE_SCHEDULER_H_
#define GOALEX_SERVE_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "data/schema.h"
#include "obs/metrics.h"
#include "serve/request.h"
#include "serve/request_queue.h"

namespace goalex::serve {

/// SLO-aware admission control: load-sheds (kResourceExhausted) when the
/// queue is deeper than the configured bound, or when the estimated
/// queueing delay — depth times an EMA of observed per-request service
/// time — exceeds the delay budget the SLO leaves after batch formation
/// (DESIGN.md §11 derives the threshold). Bulk requests are held to half
/// of both bounds so interactive traffic keeps headroom under overload.
///
/// Admission is best-effort by design: concurrent producers race the
/// depth read, so the bound can be overshot by at most the number of
/// in-flight Submit calls — never unboundedly.
class AdmissionController {
 public:
  explicit AdmissionController(const core::ServeConfig& config);

  /// Decides admission for a request seeing `queue_depth` waiters.
  Status Admit(size_t queue_depth, Priority priority) const;

  /// Scheduler feedback: folds a successfully completed batch into the
  /// service-time EMA (seconds per request). The scheduler does not call
  /// this for failed batches — error-path timings would drag the estimate
  /// toward zero and disable delay-based shedding during an outage.
  void ObserveBatch(double batch_seconds, size_t batch_size);

  /// Current per-request service-time estimate (0 until the first batch).
  double EstimatedServiceSeconds() const {
    return ema_service_seconds_.load(std::memory_order_relaxed);
  }

 private:
  const int32_t max_queue_depth_;
  const double max_queue_delay_seconds_;  ///< 0 disables the delay bound.
  const double alpha_;
  std::atomic<double> ema_service_seconds_{0.0};
};

/// Counters of a scheduler's lifetime, independent of the obs layer so
/// tests and benches can assert on them with metrics compiled out.
struct ServeStats {
  uint64_t submitted = 0;   ///< Submit calls, admitted or not.
  uint64_t admitted = 0;
  uint64_t shed = 0;        ///< Rejected with kResourceExhausted.
  uint64_t rejected = 0;    ///< Rejected for other reasons (stopped).
  uint64_t completed = 0;
  uint64_t failed = 0;      ///< Completed with a non-OK status.
  uint64_t batches = 0;
  uint64_t closed_max_size = 0;  ///< Batches closed by the size trigger.
  uint64_t closed_deadline = 0;  ///< Batches closed by the deadline timer.
  uint64_t closed_drain = 0;     ///< Partial batches flushed at shutdown.
};

/// Continuous-batching request scheduler: the serving backbone that turns
/// a batch extraction function into a long-running service.
///
///   producers --lock-free push--> RequestQueue --drain--> batch former
///        ^                                                    |
///        +-- admission control (shed)          dispatch <-----+
///
/// A dedicated scheduler thread forms dynamic batches from the queue: a
/// batch closes when it reaches max_batch_size OR when the oldest waiting
/// request hits the batch deadline, whichever fires first. Dequeue is
/// priority-aware (interactive strictly before bulk). Each batch is
/// handed to the BatchHandler (typically DetailExtractor inference fanned
/// out on a runtime::BatchRunner); per-request promises deliver results.
///
/// Shutdown is clean: Stop() rejects new submissions, then drains every
/// admitted request through the handler before joining, so no admitted
/// future is ever abandoned.
class Scheduler {
 public:
  /// Maps a formed batch to one record per request, index-aligned. Must
  /// be safe to call from the scheduler thread; exceptions are caught and
  /// fail that batch's requests with kInternal.
  using BatchHandler = std::function<std::vector<data::DetailRecord>(
      const std::vector<const data::Objective*>&)>;

  /// Spawns the scheduler thread. `config` must Validate().
  Scheduler(const core::ServeConfig& config, BatchHandler handler);

  /// Stops (draining admitted requests) and joins.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Submits one objective. Returns the completion future, or
  /// kResourceExhausted when admission sheds the request, or
  /// kFailedPrecondition after Stop(). Safe from any thread.
  StatusOr<ResultFuture> Submit(data::Objective objective,
                                Priority priority = Priority::kInteractive);

  /// Stops accepting requests, drains everything already admitted through
  /// the handler, and joins the scheduler thread. Idempotent.
  void Stop();

  /// Point-in-time counters (safe from any thread).
  ServeStats stats() const;

  /// Pending (admitted, unscheduled) request count.
  size_t queue_depth() const { return queue_.depth(); }

  const core::ServeConfig& config() const { return config_; }
  const AdmissionController& admission() const { return admission_; }

 private:
  /// Why a batch closed.
  enum class CloseTrigger { kMaxSize, kDeadline, kDrain };

  void Loop();
  void RunBatch(std::vector<Request*>& batch, CloseTrigger trigger);
  void ResolveMetrics();

  const core::ServeConfig config_;
  const BatchHandler handler_;
  const std::chrono::steady_clock::duration batch_deadline_;

  RequestQueue queue_;
  AdmissionController admission_;

  // Producer -> scheduler wakeup handshake. The queue itself is
  // lock-free; this mutex only covers the condition-variable signalling
  // (and is held for a flag flip, never across work).
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool wake_signal_ = false;
  bool stop_ = false;

  std::atomic<bool> accepting_{true};
  std::atomic<int32_t> in_submit_{0};  ///< Submits past the accept gate.
  std::once_flag stop_once_;
  std::thread scheduler_thread_;

  // Lifetime counters (relaxed atomics; see ServeStats).
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> closed_max_size_{0};
  std::atomic<uint64_t> closed_deadline_{0};
  std::atomic<uint64_t> closed_drain_{0};

  std::chrono::steady_clock::time_point start_time_;

  // serve.* observability handles (null when instrumentation is off).
  obs::Histogram* request_seconds_ = nullptr;
  obs::Histogram* request_seconds_by_priority_[kPriorityCount] = {nullptr,
                                                                  nullptr};
  obs::Histogram* queue_wait_seconds_ = nullptr;
  obs::Histogram* batch_size_hist_ = nullptr;
  obs::Counter* admitted_counter_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
  obs::Counter* completed_counter_ = nullptr;
  obs::Counter* close_max_size_counter_ = nullptr;
  obs::Counter* close_deadline_counter_ = nullptr;
  obs::Counter* close_drain_counter_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Gauge* qps_gauge_ = nullptr;
};

}  // namespace goalex::serve

#endif  // GOALEX_SERVE_SCHEDULER_H_
