#ifndef GOALEX_SERVE_REQUEST_QUEUE_H_
#define GOALEX_SERVE_REQUEST_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <deque>

#include "serve/request.h"

namespace goalex::serve {

/// Lock-light multi-producer single-consumer request queue.
///
/// Producers push with a lock-free Treiber-stack exchange (one CAS, no
/// mutex, no allocation beyond the node itself); the single consumer (the
/// scheduler thread) periodically drains the whole pending stack in one
/// atomic exchange and restores arrival order by reversing it into
/// per-priority FIFOs. Priority-aware dequeue then pops interactive
/// requests strictly before bulk ones, FIFO within a class.
///
/// Thread contract: Push/depth are safe from any thread; Drain/Pop/
/// ready_size/OldestReadyEnqueueTime are consumer-thread only.
class RequestQueue {
 public:
  RequestQueue() = default;
  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Deletes any requests still held (normally the scheduler completes or
  /// fails them all first).
  ~RequestQueue();

  /// Producer side: takes ownership of `request` and makes it visible to
  /// the consumer. Lock-free; never blocks.
  void Push(Request* request);

  /// Pending requests (pushed, not yet popped). Approximate under
  /// concurrent pushes; this is the depth signal admission control reads.
  size_t depth() const { return depth_.load(std::memory_order_relaxed); }

  /// Consumer side: moves everything pushed since the last drain into the
  /// per-priority ready FIFOs, in arrival order. Returns how many moved.
  size_t Drain();

  /// Consumer side: pops the next request — interactive before bulk, FIFO
  /// within a class. Returns nullptr when no drained request is ready
  /// (there may still be undrained pushes; call Drain first).
  Request* Pop();

  /// Consumer side: drained-but-unscheduled request count.
  size_t ready_size() const;

  /// Consumer side: enqueue time of the oldest ready request (the batch
  /// deadline anchor). Requires ready_size() > 0.
  std::chrono::steady_clock::time_point OldestReadyEnqueueTime() const;

 private:
  /// Incoming Treiber stack head (newest first).
  std::atomic<Request*> incoming_{nullptr};
  std::atomic<size_t> depth_{0};

  /// Consumer-only ready FIFOs, one per priority class.
  std::deque<Request*> ready_[kPriorityCount];
};

}  // namespace goalex::serve

#endif  // GOALEX_SERVE_REQUEST_QUEUE_H_
