#include "serve/workload.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <utility>

#include "common/check.h"

namespace goalex::serve {
namespace {

/// Placeholder pools of the objective templates, scalar_bench style: a
/// template string with {name} slots plus a named pool per slot.
const std::map<std::string, std::vector<std::string>>& TemplatePools() {
  static const std::map<std::string, std::vector<std::string>>* const
      kPools = new std::map<std::string, std::vector<std::string>>{
          {"company",
           {"Aurora Materials", "Borealis Foods", "Cascadia Energy",
            "Delta Logistics", "Evergreen Retail", "Fjord Shipping",
            "Granite Construction", "Helios Chemicals"}},
          {"action",
           {"reduce", "cut", "lower", "decrease", "increase", "double",
            "achieve", "reach", "eliminate", "offset"}},
          {"metric",
           {"CO2 emissions", "scope 1 emissions", "scope 2 emissions",
            "energy consumption", "water usage", "waste to landfill",
            "the share of renewable electricity", "plastic packaging",
            "fleet fuel consumption"}},
          {"amount",
           {"20%", "25%", "30%", "40%", "50 percent", "1.5 Mt", "10 GWh",
            "net zero", "1,000 tonnes", "two thirds"}},
          {"year",
           {"2025", "2027", "2028", "2030", "2032", "2035", "2040",
            "2045", "2050"}},
          {"qualifier",
           {"across all sites", "in our supply chain",
            "for scope 1 and 2", "globally", "in our European operations",
            "per unit of production"}},
          {"baseline",
           {"from a 2015 baseline", "compared with 2019",
            "against 2020 levels", "relative to fiscal year 2018"}},
          {"boilerplate",
           {"As part of our long-term ESG commitments, we report progress "
            "annually.",
            "Our board reviews sustainability performance every quarter.",
            "These targets were validated by an external assurance "
            "provider.",
            "Stakeholder engagement informs our materiality assessment."}},
      };
  return *kPools;
}

const std::vector<std::string>& ShortTemplates() {
  static const std::vector<std::string>* const kTemplates =
      new std::vector<std::string>{
          "{action} {metric} by {amount} by {year}",
          "{action} {metric} to {amount} by {year}",
          "we will {action} {metric} by {amount} by {year}",
      };
  return *kTemplates;
}

const std::vector<std::string>& MediumTemplates() {
  static const std::vector<std::string>* const kTemplates =
      new std::vector<std::string>{
          "{company} will {action} {metric} by {amount} by {year} "
          "{baseline}.",
          "We commit to {action} {metric} by {amount} {qualifier} by "
          "{year}.",
          "By {year}, {company} aims to {action} {metric} by {amount} "
          "{baseline}.",
      };
  return *kTemplates;
}

bool InBurst(double t, const TrafficConfig& config) {
  if (config.burst_period_s <= 0.0) return false;
  double phase = std::fmod(t, config.burst_period_s);
  return phase < config.burst_duration_s;
}

SizeClass DrawSizeClass(const TrafficConfig& config, Rng& rng) {
  double total = config.short_weight + config.medium_weight +
                 config.long_weight;
  if (total <= 0.0) return SizeClass::kShort;
  double draw = rng.NextDouble() * total;
  if (draw < config.short_weight) return SizeClass::kShort;
  if (draw < config.short_weight + config.medium_weight) {
    return SizeClass::kMedium;
  }
  return SizeClass::kLong;
}

}  // namespace

const char* SizeClassName(SizeClass size_class) {
  switch (size_class) {
    case SizeClass::kShort:
      return "short";
    case SizeClass::kMedium:
      return "medium";
    case SizeClass::kLong:
      return "long";
  }
  return "unknown";
}

std::string ExpandTemplate(
    const std::string& template_text,
    const std::map<std::string, std::vector<std::string>>& pools,
    Rng& rng) {
  std::string out;
  out.reserve(template_text.size());
  size_t i = 0;
  while (i < template_text.size()) {
    char c = template_text[i];
    if (c != '{') {
      out.push_back(c);
      ++i;
      continue;
    }
    size_t close = template_text.find('}', i + 1);
    if (close == std::string::npos) {
      out.append(template_text, i, std::string::npos);
      break;
    }
    std::string name = template_text.substr(i + 1, close - i - 1);
    auto it = pools.find(name);
    if (it == pools.end() || it->second.empty()) {
      out.append(template_text, i, close - i + 1);  // Leave verbatim.
    } else {
      out += rng.Choose(it->second);
    }
    i = close + 1;
  }
  return out;
}

std::string TemplatedObjectiveText(SizeClass size_class, Rng& rng) {
  const auto& pools = TemplatePools();
  switch (size_class) {
    case SizeClass::kShort:
      return ExpandTemplate(rng.Choose(ShortTemplates()), pools, rng);
    case SizeClass::kMedium:
      return ExpandTemplate(rng.Choose(MediumTemplates()), pools, rng);
    case SizeClass::kLong: {
      std::string text =
          ExpandTemplate(rng.Choose(pools.at("boilerplate")), pools, rng);
      text += " ";
      text += ExpandTemplate(rng.Choose(MediumTemplates()), pools, rng);
      text += " This target applies ";
      text += rng.Choose(pools.at("qualifier"));
      text += ". ";
      text += ExpandTemplate(rng.Choose(pools.at("boilerplate")), pools,
                             rng);
      return text;
    }
  }
  return std::string();
}

std::vector<TimedRequest> GenerateTrace(const TrafficConfig& config) {
  GOALEX_CHECK(config.rate_qps > 0.0);
  GOALEX_CHECK(config.duration_s > 0.0);
  Rng rng(config.seed);
  std::vector<TimedRequest> trace;
  trace.reserve(static_cast<size_t>(config.rate_qps * config.duration_s *
                                    1.2) +
                16);
  double t = 0.0;
  size_t index = 0;
  for (;;) {
    // Open-loop Poisson: exponential inter-arrival at the rate in effect
    // at the current time (burst episodes multiply the base rate).
    double rate = config.rate_qps *
                  (InBurst(t, config) ? config.burst_multiplier : 1.0);
    // Draw u from (0, 1): u == 0 would give a zero inter-arrival gap and
    // break the strictly-increasing arrival guarantee.
    double u;
    do {
      u = rng.NextDouble();
    } while (u == 0.0);
    double next = t + -std::log1p(-u) / rate;
    // A gap below one ulp of t would still collapse two arrivals; nudge
    // forward so the strict ordering holds even then.
    if (!(next > t)) {
      next = std::nextafter(t, std::numeric_limits<double>::infinity());
    }
    t = next;
    if (t >= config.duration_s) break;

    TimedRequest request;
    request.arrival_s = t;
    request.priority = rng.NextBernoulli(config.interactive_fraction)
                           ? Priority::kInteractive
                           : Priority::kBulk;
    request.size_class = DrawSizeClass(config, rng);
    request.objective.id = "traffic-" + std::to_string(index);
    request.objective.text = TemplatedObjectiveText(request.size_class, rng);
    request.objective.company =
        rng.Choose(TemplatePools().at("company"));
    request.objective.document = "traffic_gen";
    trace.push_back(std::move(request));
    ++index;
  }
  return trace;
}

double SortedPercentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank > 0) --rank;
  rank = std::min(rank, sorted.size() - 1);
  return sorted[rank];
}

double ReplayResult::LatencyPercentile(double q) const {
  return SortedPercentile(latencies_s, q);
}

double ReplayResult::InteractiveLatencyPercentile(double q) const {
  return SortedPercentile(interactive_latencies_s, q);
}

ReplayResult ReplayTrace(Scheduler& scheduler,
                         const std::vector<TimedRequest>& trace) {
  using SteadyClock = std::chrono::steady_clock;
  ReplayResult result;
  if (trace.empty()) return result;

  std::vector<ResultFuture> futures;
  futures.reserve(trace.size());
  uint64_t behind = 0;
  const SteadyClock::time_point start = SteadyClock::now();
  for (const TimedRequest& request : trace) {
    // Open-loop: fire at the scheduled offset no matter how far behind
    // the service is. When behind schedule, submit immediately — that is
    // what keeps queue pressure honest — but yield periodically: on a
    // machine with fewer cores than actors, a never-yielding producer
    // starves the scheduler thread outright and measures its own
    // contention instead of the service's latency.
    const SteadyClock::time_point target =
        start + std::chrono::duration_cast<SteadyClock::duration>(
                    std::chrono::duration<double>(request.arrival_s));
    if (SteadyClock::now() < target) {
      std::this_thread::sleep_until(target);
    } else if ((++behind & 127) == 0) {
      std::this_thread::yield();
    }
    ++result.submitted;
    StatusOr<ResultFuture> submitted =
        scheduler.Submit(request.objective, request.priority);
    if (!submitted.ok()) {
      ++result.shed;
      continue;
    }
    ++result.admitted;
    futures.push_back(std::move(submitted).value());
  }

  result.latencies_s.reserve(futures.size());
  for (ResultFuture& future : futures) {
    StatusOr<Completion> completion = future.get();
    if (!completion.ok()) {
      ++result.failed;
      continue;
    }
    result.latencies_s.push_back(completion->latency_seconds);
    if (completion->priority == Priority::kInteractive) {
      result.interactive_latencies_s.push_back(completion->latency_seconds);
    } else {
      result.bulk_latencies_s.push_back(completion->latency_seconds);
    }
  }
  result.wall_s = std::chrono::duration<double>(SteadyClock::now() - start)
                      .count();
  std::sort(result.latencies_s.begin(), result.latencies_s.end());
  std::sort(result.interactive_latencies_s.begin(),
            result.interactive_latencies_s.end());
  std::sort(result.bulk_latencies_s.begin(), result.bulk_latencies_s.end());

  const double trace_span = trace.back().arrival_s;
  result.offered_qps = trace_span > 0.0
                           ? static_cast<double>(result.submitted) /
                                 trace_span
                           : 0.0;
  result.completed_qps =
      result.wall_s > 0.0
          ? static_cast<double>(result.latencies_s.size()) / result.wall_s
          : 0.0;
  return result;
}

}  // namespace goalex::serve
