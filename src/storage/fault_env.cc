#include "storage/fault_env.h"

namespace goalex::storage {
namespace {

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    size_t allowed = env_->ClaimBytes(data.size());
    if (allowed > 0) {
      Status status = base_->Append(data.substr(0, allowed));
      if (!status.ok()) return status;
    }
    if (allowed < data.size()) {
      return InternalError("fault injection: write budget exhausted");
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (env_->killed()) return env_->DeadStatus();
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

}  // namespace

FaultInjectionEnv::FaultInjectionEnv(Env* base) : base_(base) {}

void FaultInjectionEnv::SetWriteBudget(int64_t bytes) {
  budget_.store(bytes, std::memory_order_release);
  killed_.store(false, std::memory_order_release);
}

size_t FaultInjectionEnv::ClaimBytes(size_t want) {
  if (killed_.load(std::memory_order_acquire)) return 0;
  int64_t budget = budget_.load(std::memory_order_acquire);
  size_t allowed = want;
  if (budget >= 0) {
    // Single-writer harness: a plain compare-and-store is enough, and it
    // keeps the torn boundary exactly at the configured byte.
    allowed = static_cast<size_t>(
        std::min<int64_t>(budget, static_cast<int64_t>(want)));
    budget_.store(budget - static_cast<int64_t>(allowed),
                  std::memory_order_release);
    if (allowed < want) killed_.store(true, std::memory_order_release);
  }
  total_written_.fetch_add(allowed, std::memory_order_acq_rel);
  return allowed;
}

Status FaultInjectionEnv::DeadStatus() const {
  return InternalError("fault injection: process killed");
}

StatusOr<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  if (killed()) return DeadStatus();
  StatusOr<std::unique_ptr<WritableFile>> base =
      base_->NewWritableFile(path, truncate);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(this, std::move(base.value())));
}

StatusOr<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  return base_->ReadFileToString(path);
}

StatusOr<std::unique_ptr<MmapFile>> FaultInjectionEnv::MmapReadOnly(
    const std::string& path) {
  return base_->MmapReadOnly(path);
}

StatusOr<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::Truncate(const std::string& path, uint64_t size) {
  if (killed()) return DeadStatus();
  return base_->Truncate(path, size);
}

Status FaultInjectionEnv::Rename(const std::string& from,
                                 const std::string& to) {
  if (killed()) return DeadStatus();
  return base_->Rename(from, to);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  if (killed()) return DeadStatus();
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::CreateDirs(const std::string& dir) {
  if (killed()) return DeadStatus();
  return base_->CreateDirs(dir);
}

}  // namespace goalex::storage
