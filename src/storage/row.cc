#include "storage/row.h"

#include <cstring>

#include "values/value_normalizer.h"

namespace goalex::storage {
namespace {

/// Hard cap on any single length field. Far above anything the system
/// produces; its job is to make corrupt lengths fail fast instead of
/// attempting a huge allocation.
constexpr uint64_t kMaxStringBytes = uint64_t{1} << 30;
constexpr uint64_t kMaxFields = uint64_t{1} << 20;

void AppendU32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void AppendI32(std::string* out, int32_t v) {
  AppendU32(out, static_cast<uint32_t>(v));
}

void AppendI64(std::string* out, int64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void AppendLenPrefixed(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool ReadU32(const uint8_t* data, size_t size, size_t* pos, uint32_t* v) {
  if (size - *pos < sizeof(*v)) return false;
  std::memcpy(v, data + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

bool ReadI32(const uint8_t* data, size_t size, size_t* pos, int32_t* v) {
  uint32_t raw = 0;
  if (!ReadU32(data, size, pos, &raw)) return false;
  std::memcpy(v, &raw, sizeof(raw));
  return true;
}

bool ReadI64(const uint8_t* data, size_t size, size_t* pos, int64_t* v) {
  if (size - *pos < sizeof(*v)) return false;
  std::memcpy(v, data + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

bool ReadLenPrefixed(const uint8_t* data, size_t size, size_t* pos,
                     std::string* s) {
  uint32_t len = 0;
  if (!ReadU32(data, size, pos, &len)) return false;
  if (len > kMaxStringBytes || size - *pos < len) return false;
  s->assign(reinterpret_cast<const char*>(data) + *pos, len);
  *pos += len;
  return true;
}

}  // namespace

void EncodeRow(const Row& row, std::string* out) {
  AppendI64(out, row.row_id);
  AppendI32(out, row.page);
  AppendLenPrefixed(out, row.company);
  AppendLenPrefixed(out, row.document);
  AppendLenPrefixed(out, row.record.objective_id);
  AppendLenPrefixed(out, row.record.objective_text);
  AppendU32(out, static_cast<uint32_t>(row.record.fields.size()));
  for (const auto& [kind, value] : row.record.fields) {
    AppendLenPrefixed(out, kind);
    AppendLenPrefixed(out, value);
  }
}

bool DecodeRow(const uint8_t* data, size_t size, size_t* pos, Row* out) {
  if (*pos > size) return false;
  if (!ReadI64(data, size, pos, &out->row_id)) return false;
  int32_t page = 0;
  if (!ReadI32(data, size, pos, &page)) return false;
  out->page = page;
  if (!ReadLenPrefixed(data, size, pos, &out->company) ||
      !ReadLenPrefixed(data, size, pos, &out->document) ||
      !ReadLenPrefixed(data, size, pos, &out->record.objective_id) ||
      !ReadLenPrefixed(data, size, pos, &out->record.objective_text)) {
    return false;
  }
  uint32_t field_count = 0;
  if (!ReadU32(data, size, pos, &field_count)) return false;
  if (field_count > kMaxFields) return false;
  out->record.fields.clear();
  for (uint32_t i = 0; i < field_count; ++i) {
    std::string kind;
    std::string value;
    if (!ReadLenPrefixed(data, size, pos, &kind) ||
        !ReadLenPrefixed(data, size, pos, &value)) {
      return false;
    }
    out->record.fields.emplace(std::move(kind), std::move(value));
  }
  return true;
}

bool DecodeRowExact(std::string_view payload, Row* out) {
  size_t pos = 0;
  const uint8_t* data = reinterpret_cast<const uint8_t*>(payload.data());
  if (!DecodeRow(data, payload.size(), &pos, out)) return false;
  return pos == payload.size();
}

std::optional<int> DeadlineYearOfRecord(const data::DetailRecord& record) {
  std::string value = record.FieldOrEmpty("Deadline");
  if (value.empty()) value = record.FieldOrEmpty("TargetYear");
  if (value.empty()) return std::nullopt;
  return values::NormalizeDeadlineYear(value);
}

}  // namespace goalex::storage
