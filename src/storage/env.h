#ifndef GOALEX_STORAGE_ENV_H_
#define GOALEX_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace goalex::storage {

/// A sequential-write handle produced by Env::NewWritableFile. Append goes
/// to the OS immediately (no user-space buffer), Sync makes it durable.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file. A failed append may have
  /// written a prefix of `data` (that is exactly the torn-write case the
  /// WAL recovery path is built for).
  virtual Status Append(std::string_view data) = 0;

  /// Flushes file data to stable storage (fsync).
  virtual Status Sync() = 0;

  /// Closes the handle. Further calls fail. Called by the destructor if
  /// the caller did not; destructor-time errors are dropped.
  virtual Status Close() = 0;
};

/// A read-only memory mapping of a whole file. Keeps the mapping alive for
/// its own lifetime; sealed segments hold one for as long as they serve
/// queries. Empty files map to {nullptr, 0}.
class MmapFile {
 public:
  virtual ~MmapFile() = default;
  virtual const uint8_t* data() const = 0;
  virtual size_t size() const = 0;
};

/// Filesystem seam of the storage layer (DESIGN.md §12.5). Every byte the
/// WAL, segment, and manifest code reads or writes goes through an Env, so
/// the crash/corruption harness can interpose a FaultInjectionEnv and kill
/// the "process" at any write offset without mocking any storage logic.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for writing. `truncate` discards existing contents;
  /// otherwise writes append after the current end.
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Reads the entire file into a string. NotFound when absent.
  virtual StatusOr<std::string> ReadFileToString(const std::string& path) = 0;

  /// Maps the entire file read-only. NotFound when absent.
  virtual StatusOr<std::unique_ptr<MmapFile>> MmapReadOnly(
      const std::string& path) = 0;

  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;

  /// Truncates `path` to `size` bytes (WAL torn-tail repair).
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  /// Atomically renames `from` over `to` (the commit point of segment and
  /// manifest writes).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status CreateDirs(const std::string& dir) = 0;

  /// The process-wide POSIX environment.
  static Env* Default();
};

}  // namespace goalex::storage

#endif  // GOALEX_STORAGE_ENV_H_
