#ifndef GOALEX_STORAGE_WAL_H_
#define GOALEX_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/env.h"

namespace goalex::storage {

/// Append-only write-ahead log (DESIGN.md §12.3). The file is a sequence of
/// self-delimiting records:
///
///   [u32 crc][u32 len][len payload bytes]
///
/// crc is CRC-32 of the payload, len is never 0 (a zero length marks the
/// end of valid data, so a zero-filled tail — the classic torn-page shape —
/// can never parse as records). Each ObjectiveDatabase shard owns one WAL;
/// payloads are EncodeRow() rows.
class WalWriter {
 public:
  /// Opens `path` for appending (creating it if absent). `fsync_interval`
  /// is the durability policy knob: 1 syncs after every record (default,
  /// crash-safe), N > 1 syncs after every N-th record (bounded loss window,
  /// higher throughput), 0 never syncs (the OS decides).
  static StatusOr<std::unique_ptr<WalWriter>> Open(Env* env,
                                                   const std::string& path,
                                                   int32_t fsync_interval);

  /// Appends one record and applies the fsync policy. On error the file may
  /// hold a torn record at the tail; replay truncates it.
  Status Append(std::string_view payload);

  /// Forces an fsync regardless of the policy.
  Status Sync();

  uint64_t appended_records() const { return appended_; }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, int32_t fsync_interval)
      : file_(std::move(file)), fsync_interval_(fsync_interval) {}

  std::unique_ptr<WritableFile> file_;
  int32_t fsync_interval_;
  uint64_t appended_ = 0;
  uint64_t unsynced_ = 0;
};

/// Result of scanning a WAL file.
struct WalReplayResult {
  /// Payloads of every intact record, in file order.
  std::vector<std::string> payloads;
  /// Byte offset just past the last intact record. When < file size the
  /// tail is torn or corrupt and should be truncated to this offset before
  /// further appends.
  uint64_t valid_bytes = 0;
  /// True when a torn/corrupt tail was detected (valid_bytes < file size).
  bool truncated_tail = false;
};

/// Scans the WAL at `path`. A missing file yields an empty result (a fresh
/// database has no WAL yet). Corruption is never an error here: scanning
/// simply stops at the first record whose length or checksum does not hold,
/// and reports how many bytes were intact — recovery keeps the valid prefix
/// and discards the rest, exactly the contract crash recovery needs.
StatusOr<WalReplayResult> ReplayWal(Env* env, const std::string& path);

}  // namespace goalex::storage

#endif  // GOALEX_STORAGE_WAL_H_
