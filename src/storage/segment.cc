#include "storage/segment.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "common/check.h"
#include "common/string_util.h"
#include "storage/crc32.h"
#include "text/word_tokenizer.h"

namespace goalex::storage {
namespace {

constexpr char kMagic[8] = {'G', 'X', 'S', 'E', 'G', '0', '0', '1'};
constexpr char kEndMagic[8] = {'G', 'X', 'S', 'E', 'G', 'E', 'N', 'D'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderBytes = 24;  // magic + version + reserved + row_count
constexpr size_t kTailBytes = 20;    // table_offset + crc + end magic

// Section ids of the fixed layout.
constexpr uint32_t kSecRowIds = 1;
constexpr uint32_t kSecRowOffsets = 2;
constexpr uint32_t kSecRowData = 3;
constexpr uint32_t kSecStats = 9;

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

int64_t LoadI64(const uint8_t* p) {
  int64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  out->append(buf, sizeof(v));
}

void AppendI64(std::string* out, int64_t v) {
  AppendU64(out, static_cast<uint64_t>(v));
}

/// Serializes a sorted term -> postings map in the flat dictionary layout:
/// u64 T, u64 key_offsets[T+1], u64 post_offsets[T+1], key blob,
/// u32 postings[].
std::string SerializeDict(
    const std::map<std::string, std::vector<uint32_t>, std::less<>>& dict) {
  std::string out;
  uint64_t term_count = dict.size();
  AppendU64(&out, term_count);
  uint64_t key_offset = 0;
  AppendU64(&out, key_offset);
  for (const auto& [key, postings] : dict) {
    key_offset += key.size();
    AppendU64(&out, key_offset);
  }
  uint64_t post_offset = 0;
  AppendU64(&out, post_offset);
  for (const auto& [key, postings] : dict) {
    post_offset += postings.size();
    AppendU64(&out, post_offset);
  }
  for (const auto& [key, postings] : dict) out.append(key);
  for (const auto& [key, postings] : dict) {
    for (uint32_t ordinal : postings) AppendU32(&out, ordinal);
  }
  return out;
}

void AppendStatsMap(std::string* out,
                    const std::map<std::string, int64_t>& counts) {
  AppendU64(out, counts.size());
  for (const auto& [key, count] : counts) {
    AppendU32(out, static_cast<uint32_t>(key.size()));
    out->append(key);
    AppendI64(out, count);
  }
}

bool ParseStatsMap(const uint8_t* data, size_t size, size_t* pos,
                   std::unordered_map<std::string, int64_t>* out) {
  if (size - *pos < sizeof(uint64_t)) return false;
  uint64_t count = LoadU64(data + *pos);
  *pos += sizeof(uint64_t);
  if (count > size) return false;  // Cheap sanity bound.
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    if (size - *pos < sizeof(uint32_t)) return false;
    uint64_t len = LoadU32(data + *pos);
    *pos += sizeof(uint32_t);
    if (size - *pos < len + sizeof(int64_t)) return false;
    std::string key(reinterpret_cast<const char*>(data) + *pos, len);
    *pos += len;
    int64_t value = LoadI64(data + *pos);
    *pos += sizeof(int64_t);
    (*out)[std::move(key)] = value;
  }
  return true;
}

bool IsIndexableToken(std::string_view token) {
  for (char c : token) {
    unsigned char b = static_cast<unsigned char>(c);
    if (std::isalnum(b) || b >= 0x80) return true;
  }
  return false;
}

}  // namespace

std::string FieldValueKey(std::string_view kind, std::string_view value) {
  std::string key(kind);
  key.push_back('\x1f');
  key.append(value);
  return key;
}

std::string YearKey(int year) {
  // Bias so every int year maps to a non-negative value; zero-pad to a
  // fixed 10 digits so lexicographic key order equals numeric year order.
  constexpr int64_t kBias = 1000000000;
  int64_t biased = static_cast<int64_t>(year) + kBias;
  if (biased < 0) biased = 0;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%010lld", static_cast<long long>(biased));
  return std::string(buf);
}

std::vector<std::string> TextIndexTerms(std::string_view text) {
  static const text::WordTokenizer* const tokenizer =
      new text::WordTokenizer();
  std::vector<std::string> terms;
  for (text::Token& token : tokenizer->Tokenize(text)) {
    if (!IsIndexableToken(token.text)) continue;
    terms.push_back(AsciiToLower(token.text));
  }
  return terms;
}

bool ContainsPhrase(std::string_view text,
                    const std::vector<std::string>& terms) {
  if (terms.empty()) return true;
  std::vector<std::string> stream = TextIndexTerms(text);
  if (stream.size() < terms.size()) return false;
  for (size_t start = 0; start + terms.size() <= stream.size(); ++start) {
    bool match = true;
    for (size_t i = 0; i < terms.size(); ++i) {
      if (stream[start + i] != terms[i]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

uint32_t PostingsView::At(size_t i) const {
  GOALEX_CHECK(i < count_);
  return LoadU32(base_ + i * sizeof(uint32_t));
}

// --- SegmentBuilder --------------------------------------------------------

void SegmentBuilder::Add(const Row& row) {
  GOALEX_CHECK_MSG(row_ids_.empty() || row.row_id > row_ids_.back(),
                   "segment rows must be added in ascending row_id order");
  uint32_t ordinal = static_cast<uint32_t>(row_ids_.size());
  row_ids_.push_back(row.row_id);
  EncodeRow(row, &row_data_);
  row_offsets_.push_back(row_data_.size());

  company_[row.company].push_back(ordinal);
  ++company_rows_[row.company];
  for (const auto& [kind, value] : row.record.fields) {
    if (value.empty()) continue;
    field_kind_[kind].push_back(ordinal);
    field_value_[FieldValueKey(kind, value)].push_back(ordinal);
    ++company_kind_rows_[FieldValueKey(row.company, kind)];
  }
  if (std::optional<int> year = DeadlineYearOfRecord(row.record)) {
    year_[YearKey(*year)].push_back(ordinal);
  }

  std::set<std::string> terms;
  for (std::string& term : TextIndexTerms(row.record.objective_text)) {
    terms.insert(std::move(term));
  }
  for (const auto& [kind, value] : row.record.fields) {
    if (value.empty()) continue;
    for (std::string& term : TextIndexTerms(value)) {
      terms.insert(std::move(term));
    }
  }
  for (const std::string& term : terms) text_[term].push_back(ordinal);
}

std::string SegmentBuilder::Serialize() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendU32(&out, kFormatVersion);
  AppendU32(&out, 0);  // reserved
  AppendU64(&out, row_ids_.size());

  struct Entry {
    uint32_t id;
    uint64_t offset;
    uint64_t size;
  };
  std::vector<Entry> table;
  auto add_section = [&](uint32_t id, const std::string& bytes) {
    table.push_back({id, out.size(), bytes.size()});
    out.append(bytes);
  };

  std::string row_ids;
  for (int64_t id : row_ids_) AppendI64(&row_ids, id);
  add_section(kSecRowIds, row_ids);

  std::string row_offsets;
  for (uint64_t offset : row_offsets_) AppendU64(&row_offsets, offset);
  add_section(kSecRowOffsets, row_offsets);

  add_section(kSecRowData, row_data_);
  add_section(static_cast<uint32_t>(SegmentIndex::kCompany),
              SerializeDict(company_));
  add_section(static_cast<uint32_t>(SegmentIndex::kFieldKind),
              SerializeDict(field_kind_));
  add_section(static_cast<uint32_t>(SegmentIndex::kFieldValue),
              SerializeDict(field_value_));
  add_section(static_cast<uint32_t>(SegmentIndex::kDeadlineYear),
              SerializeDict(year_));
  add_section(static_cast<uint32_t>(SegmentIndex::kText),
              SerializeDict(text_));

  std::string stats;
  AppendStatsMap(&stats, company_rows_);
  AppendStatsMap(&stats, company_kind_rows_);
  add_section(kSecStats, stats);

  uint64_t table_offset = out.size();
  AppendU32(&out, static_cast<uint32_t>(table.size()));
  for (const Entry& entry : table) {
    AppendU32(&out, entry.id);
    AppendU64(&out, entry.offset);
    AppendU64(&out, entry.size);
  }

  AppendU64(&out, table_offset);
  // The CRC covers everything before itself: header, sections, table, and
  // the table offset word.
  AppendU32(&out, Crc32(out.data(), out.size()));
  out.append(kEndMagic, sizeof(kEndMagic));
  return out;
}

Status SegmentBuilder::WriteTo(Env* env, const std::string& path) const {
  StatusOr<std::unique_ptr<WritableFile>> file =
      env->NewWritableFile(path, /*truncate=*/true);
  if (!file.ok()) return file.status();
  GOALEX_RETURN_IF_ERROR((*file)->Append(Serialize()));
  GOALEX_RETURN_IF_ERROR((*file)->Sync());
  return (*file)->Close();
}

// --- SealedSegment ---------------------------------------------------------

std::string_view SealedSegment::Dict::KeyAt(uint64_t i) const {
  if (i >= term_count) return {};
  uint64_t begin = LoadU64(key_offsets + i * sizeof(uint64_t));
  uint64_t end = LoadU64(key_offsets + (i + 1) * sizeof(uint64_t));
  if (begin > end || end > key_blob_size) return {};
  return std::string_view(reinterpret_cast<const char*>(key_blob) + begin,
                          end - begin);
}

PostingsView SealedSegment::Dict::PostingsAt(uint64_t i) const {
  if (i >= term_count) return {};
  uint64_t begin = LoadU64(post_offsets + i * sizeof(uint64_t));
  uint64_t end = LoadU64(post_offsets + (i + 1) * sizeof(uint64_t));
  if (begin > end || end > total_postings) return {};
  return PostingsView(postings + begin * sizeof(uint32_t), end - begin);
}

uint64_t SealedSegment::Dict::LowerBound(std::string_view key) const {
  uint64_t lo = 0;
  uint64_t hi = term_count;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (KeyAt(mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

StatusOr<std::shared_ptr<SealedSegment>> SealedSegment::Open(
    Env* env, const std::string& path) {
  StatusOr<std::unique_ptr<MmapFile>> file = env->MmapReadOnly(path);
  if (!file.ok()) return file.status();
  std::shared_ptr<SealedSegment> segment(new SealedSegment());
  segment->path_ = path;
  segment->file_ = std::move(file.value());
  Status bound = segment->Bind();
  if (!bound.ok()) {
    return Status(StatusCode::kDataLoss,
                  "corrupt segment " + path + ": " + bound.message());
  }
  return segment;
}

Status SealedSegment::Bind() {
  const uint8_t* data = file_->data();
  const uint64_t size = file_->size();
  if (size < kHeaderBytes + sizeof(uint32_t) + kTailBytes) {
    return DataLossError("file too small");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return DataLossError("bad magic");
  }
  if (LoadU32(data + 8) != kFormatVersion) {
    return DataLossError("unsupported version");
  }
  if (std::memcmp(data + size - sizeof(kEndMagic), kEndMagic,
                  sizeof(kEndMagic)) != 0) {
    return DataLossError("bad end magic (truncated?)");
  }
  uint32_t stored_crc = LoadU32(data + size - 12);
  if (Crc32(data, size - 12) != stored_crc) {
    return DataLossError("body checksum mismatch");
  }
  row_count_ = LoadU64(data + 16);

  uint64_t table_end = size - kTailBytes;
  uint64_t table_offset = LoadU64(data + size - kTailBytes);
  if (table_offset < kHeaderBytes || table_offset > table_end ||
      table_end - table_offset < sizeof(uint32_t)) {
    return DataLossError("section table offset out of range");
  }
  uint32_t section_count = LoadU32(data + table_offset);
  constexpr uint64_t kEntryBytes = 4 + 8 + 8;
  if (section_count > 64 ||
      table_offset + sizeof(uint32_t) + section_count * kEntryBytes !=
          table_end) {
    return DataLossError("section table size mismatch");
  }

  struct Section {
    const uint8_t* data = nullptr;
    uint64_t size = 0;
    bool present = false;
  };
  std::unordered_map<uint32_t, Section> sections;
  const uint8_t* entry = data + table_offset + sizeof(uint32_t);
  for (uint32_t i = 0; i < section_count; ++i, entry += kEntryBytes) {
    uint32_t id = LoadU32(entry);
    uint64_t offset = LoadU64(entry + 4);
    uint64_t sec_size = LoadU64(entry + 12);
    if (offset < kHeaderBytes || offset > table_offset ||
        sec_size > table_offset - offset) {
      return DataLossError("section bounds out of range");
    }
    sections[id] = Section{data + offset, sec_size, true};
  }

  auto require = [&](uint32_t id) -> Section* {
    auto it = sections.find(id);
    return it == sections.end() ? nullptr : &it->second;
  };

  Section* row_ids = require(kSecRowIds);
  Section* row_offsets = require(kSecRowOffsets);
  Section* row_data = require(kSecRowData);
  Section* stats = require(kSecStats);
  if (row_ids == nullptr || row_offsets == nullptr || row_data == nullptr ||
      stats == nullptr) {
    return DataLossError("missing mandatory section");
  }
  if (row_count_ > (uint64_t{1} << 32) - 1 ||
      row_ids->size != row_count_ * sizeof(int64_t) ||
      row_offsets->size != (row_count_ + 1) * sizeof(uint64_t)) {
    return DataLossError("row column size mismatch");
  }
  row_ids_ = row_ids->data;
  row_offsets_ = row_offsets->data;
  row_data_ = row_data->data;
  row_data_size_ = row_data->size;
  if (LoadU64(row_offsets_) != 0 ||
      LoadU64(row_offsets_ + row_count_ * sizeof(uint64_t)) !=
          row_data_size_) {
    return DataLossError("row offsets do not span row data");
  }

  auto bind_dict = [&](SegmentIndex index, Dict* dict) -> Status {
    Section* section = require(static_cast<uint32_t>(index));
    if (section == nullptr) return DataLossError("missing index section");
    const uint8_t* base = section->data;
    uint64_t sec_size = section->size;
    if (sec_size < sizeof(uint64_t)) return DataLossError("index too small");
    uint64_t term_count = LoadU64(base);
    if (term_count > (sec_size - 8) / 16) {
      return DataLossError("index term count out of range");
    }
    uint64_t arrays = 2 * (term_count + 1) * sizeof(uint64_t);
    if (sec_size < sizeof(uint64_t) + arrays) {
      return DataLossError("index arrays out of range");
    }
    dict->term_count = term_count;
    dict->key_offsets = base + sizeof(uint64_t);
    dict->post_offsets =
        dict->key_offsets + (term_count + 1) * sizeof(uint64_t);
    dict->key_blob = dict->post_offsets + (term_count + 1) * sizeof(uint64_t);
    dict->key_blob_size =
        LoadU64(dict->key_offsets + term_count * sizeof(uint64_t));
    dict->total_postings =
        LoadU64(dict->post_offsets + term_count * sizeof(uint64_t));
    uint64_t body = sizeof(uint64_t) + arrays;
    if (dict->key_blob_size > sec_size - body) {
      return DataLossError("index key blob out of range");
    }
    dict->postings = dict->key_blob + dict->key_blob_size;
    if (dict->total_postings * sizeof(uint32_t) !=
        sec_size - body - dict->key_blob_size) {
      return DataLossError("index postings out of range");
    }
    return Status::Ok();
  };
  GOALEX_RETURN_IF_ERROR(bind_dict(SegmentIndex::kCompany, &company_));
  GOALEX_RETURN_IF_ERROR(bind_dict(SegmentIndex::kFieldKind, &field_kind_));
  GOALEX_RETURN_IF_ERROR(bind_dict(SegmentIndex::kFieldValue, &field_value_));
  GOALEX_RETURN_IF_ERROR(bind_dict(SegmentIndex::kDeadlineYear, &year_));
  GOALEX_RETURN_IF_ERROR(bind_dict(SegmentIndex::kText, &text_));

  size_t pos = 0;
  if (!ParseStatsMap(stats->data, stats->size, &pos, &company_rows_) ||
      !ParseStatsMap(stats->data, stats->size, &pos, &company_kind_rows_) ||
      pos != stats->size) {
    return DataLossError("corrupt stats section");
  }
  return Status::Ok();
}

int64_t SealedSegment::RowIdAt(uint64_t ordinal) const {
  if (ordinal >= row_count_) return -1;
  return LoadI64(row_ids_ + ordinal * sizeof(int64_t));
}

bool SealedSegment::ReadRow(uint64_t ordinal, Row* out) const {
  if (ordinal >= row_count_) return false;
  uint64_t begin = LoadU64(row_offsets_ + ordinal * sizeof(uint64_t));
  uint64_t end = LoadU64(row_offsets_ + (ordinal + 1) * sizeof(uint64_t));
  if (begin > end || end > row_data_size_) return false;
  size_t pos = 0;
  return DecodeRow(row_data_ + begin, end - begin, &pos, out) &&
         pos == end - begin;
}

std::optional<uint64_t> SealedSegment::FindRowId(int64_t row_id) const {
  uint64_t lo = 0;
  uint64_t hi = row_count_;
  while (lo < hi) {
    uint64_t mid = lo + (hi - lo) / 2;
    if (RowIdAt(mid) < row_id) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < row_count_ && RowIdAt(lo) == row_id) return lo;
  return std::nullopt;
}

const SealedSegment::Dict* SealedSegment::DictFor(SegmentIndex index) const {
  switch (index) {
    case SegmentIndex::kCompany:
      return &company_;
    case SegmentIndex::kFieldKind:
      return &field_kind_;
    case SegmentIndex::kFieldValue:
      return &field_value_;
    case SegmentIndex::kDeadlineYear:
      return &year_;
    case SegmentIndex::kText:
      return &text_;
  }
  return nullptr;
}

PostingsView SealedSegment::Postings(SegmentIndex index,
                                     std::string_view key) const {
  const Dict* dict = DictFor(index);
  if (dict == nullptr) return {};
  uint64_t i = dict->LowerBound(key);
  if (i < dict->term_count && dict->KeyAt(i) == key) {
    return dict->PostingsAt(i);
  }
  return {};
}

void SealedSegment::ForEachKey(
    SegmentIndex index,
    const std::function<void(std::string_view)>& fn) const {
  const Dict* dict = DictFor(index);
  if (dict == nullptr) return;
  for (uint64_t i = 0; i < dict->term_count; ++i) fn(dict->KeyAt(i));
}

void SealedSegment::ForEachYearInRange(
    int min_year, int max_year,
    const std::function<void(const PostingsView&)>& fn) const {
  if (min_year > max_year) return;
  std::string lo_key = YearKey(min_year);
  std::string hi_key = YearKey(max_year);
  for (uint64_t i = year_.LowerBound(lo_key);
       i < year_.term_count && year_.KeyAt(i) <= hi_key; ++i) {
    fn(year_.PostingsAt(i));
  }
}

}  // namespace goalex::storage
