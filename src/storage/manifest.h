#ifndef GOALEX_STORAGE_MANIFEST_H_
#define GOALEX_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/env.h"

namespace goalex::storage {

/// One sealed segment registered in the manifest.
struct ManifestSegment {
  int shard = 0;
  std::string file;  ///< Basename inside the database directory.
  uint64_t rows = 0;
  int64_t min_row_id = 0;
  int64_t max_row_id = -1;
};

/// The authoritative directory catalog of a v2 database (DESIGN.md §12.4):
/// shard count, segment registry, and the next segment sequence number. A
/// segment file exists logically only once the manifest lists it — orphan
/// .gxseg files (a crash between segment rename and manifest commit) are
/// ignored and overwritten by the next seal.
///
/// Serialized as a line-based text file whose last line is a CRC-32 of
/// everything before it; any mismatch or malformed line is DataLoss.
/// Commits go through write-temp + fsync + rename.
struct Manifest {
  int num_shards = 0;
  uint64_t next_segment = 0;
  std::vector<ManifestSegment> segments;

  std::string Serialize() const;
};

/// Name of the manifest file inside a database directory.
inline const char* kManifestFile = "MANIFEST";

/// Parses a serialized manifest. DataLoss on bad checksum or any malformed
/// content.
StatusOr<Manifest> ParseManifest(std::string_view text);

/// Reads `<dir>/MANIFEST`. NotFound when absent; DataLoss when corrupt.
StatusOr<Manifest> ReadManifest(Env* env, const std::string& dir);

/// Atomically commits `manifest` to `<dir>/MANIFEST` (temp + fsync +
/// rename).
Status WriteManifest(Env* env, const std::string& dir,
                     const Manifest& manifest);

}  // namespace goalex::storage

#endif  // GOALEX_STORAGE_MANIFEST_H_
