#include "storage/wal.h"

#include <cstring>

#include "storage/crc32.h"

namespace goalex::storage {
namespace {

constexpr size_t kHeaderBytes = sizeof(uint32_t) * 2;  // crc + len
constexpr uint64_t kMaxRecordBytes = uint64_t{1} << 30;

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(Env* env,
                                                     const std::string& path,
                                                     int32_t fsync_interval) {
  StatusOr<std::unique_ptr<WritableFile>> file =
      env->NewWritableFile(path, /*truncate=*/false);
  if (!file.ok()) return file.status();
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(file.value()), fsync_interval));
}

Status WalWriter::Append(std::string_view payload) {
  if (payload.empty()) {
    return InvalidArgumentError("WAL records must be non-empty");
  }
  char header[kHeaderBytes];
  uint32_t crc = Crc32(payload);
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(header, &crc, sizeof(crc));
  std::memcpy(header + sizeof(crc), &len, sizeof(len));
  // One record, one Append: the header+payload go down as a single write so
  // a fault-injected crash tears at a byte offset, never between separate
  // writes of the same record.
  std::string record;
  record.reserve(kHeaderBytes + payload.size());
  record.append(header, kHeaderBytes);
  record.append(payload);
  GOALEX_RETURN_IF_ERROR(file_->Append(record));
  ++appended_;
  ++unsynced_;
  if (fsync_interval_ > 0 &&
      unsynced_ >= static_cast<uint64_t>(fsync_interval_)) {
    return Sync();
  }
  return Status::Ok();
}

Status WalWriter::Sync() {
  unsynced_ = 0;
  return file_->Sync();
}

StatusOr<WalReplayResult> ReplayWal(Env* env, const std::string& path) {
  WalReplayResult result;
  StatusOr<std::string> contents = env->ReadFileToString(path);
  if (!contents.ok()) {
    if (contents.status().code() == StatusCode::kNotFound) return result;
    return contents.status();
  }
  const std::string& data = contents.value();
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(data.data());
  size_t pos = 0;
  while (data.size() - pos >= kHeaderBytes) {
    uint32_t crc = LoadU32(bytes + pos);
    uint64_t len = LoadU32(bytes + pos + sizeof(uint32_t));
    if (len == 0 || len > kMaxRecordBytes ||
        data.size() - pos - kHeaderBytes < len) {
      break;  // Torn or corrupt tail.
    }
    const uint8_t* payload = bytes + pos + kHeaderBytes;
    if (Crc32(payload, len) != crc) break;
    result.payloads.emplace_back(reinterpret_cast<const char*>(payload), len);
    pos += kHeaderBytes + len;
  }
  result.valid_bytes = pos;
  result.truncated_tail = pos < data.size();
  return result;
}

}  // namespace goalex::storage
