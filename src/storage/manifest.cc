#include "storage/manifest.h"

#include <charconv>
#include <cinttypes>
#include <cstdio>

#include "storage/crc32.h"

namespace goalex::storage {
namespace {

constexpr char kHeaderLine[] = "goalexdb-manifest-v2";

/// Strict integer parse of a full token (no sign for unsigned, no trailing
/// garbage).
template <typename T>
bool ParseInt(std::string_view token, T* out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

/// Splits `line` on single spaces into tokens.
std::vector<std::string_view> SplitTokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos <= line.size()) {
    size_t space = line.find(' ', pos);
    if (space == std::string_view::npos) {
      tokens.push_back(line.substr(pos));
      break;
    }
    tokens.push_back(line.substr(pos, space - pos));
    pos = space + 1;
  }
  return tokens;
}

}  // namespace

std::string Manifest::Serialize() const {
  std::string out = kHeaderLine;
  out.push_back('\n');
  char line[256];
  std::snprintf(line, sizeof(line), "shards %d\n", num_shards);
  out.append(line);
  std::snprintf(line, sizeof(line), "next_segment %" PRIu64 "\n",
                next_segment);
  out.append(line);
  for (const ManifestSegment& segment : segments) {
    std::snprintf(line, sizeof(line),
                  "segment %d %s %" PRIu64 " %" PRId64 " %" PRId64 "\n",
                  segment.shard, segment.file.c_str(), segment.rows,
                  segment.min_row_id, segment.max_row_id);
    out.append(line);
  }
  std::snprintf(line, sizeof(line), "crc %08x\n", Crc32(out));
  out.append(line);
  return out;
}

StatusOr<Manifest> ParseManifest(std::string_view text) {
  // Separate the trailing "crc XXXXXXXX\n" line and verify it first.
  constexpr size_t kCrcLineBytes = 4 + 8 + 1;  // "crc " + 8 hex + '\n'
  if (text.size() < kCrcLineBytes || text.back() != '\n') {
    return DataLossError("manifest truncated");
  }
  size_t crc_line = text.size() - kCrcLineBytes;
  if (text.substr(crc_line, 4) != "crc ") {
    return DataLossError("manifest missing checksum line");
  }
  uint32_t stored = 0;
  {
    std::string_view hex = text.substr(crc_line + 4, 8);
    const char* begin = hex.data();
    auto [ptr, ec] = std::from_chars(begin, begin + hex.size(), stored, 16);
    if (ec != std::errc() || ptr != begin + hex.size()) {
      return DataLossError("manifest malformed checksum");
    }
  }
  std::string_view body = text.substr(0, crc_line);
  if (Crc32(body) != stored) {
    return DataLossError("manifest checksum mismatch");
  }

  Manifest manifest;
  bool saw_header = false;
  bool saw_shards = false;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string_view::npos) {
      return DataLossError("manifest missing final newline");
    }
    std::string_view line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (!saw_header) {
      if (line != kHeaderLine) return DataLossError("manifest bad header");
      saw_header = true;
      continue;
    }
    std::vector<std::string_view> tokens = SplitTokens(line);
    if (tokens.size() == 2 && tokens[0] == "shards") {
      if (!ParseInt(tokens[1], &manifest.num_shards) ||
          manifest.num_shards < 1 || manifest.num_shards > 4096) {
        return DataLossError("manifest bad shard count");
      }
      saw_shards = true;
    } else if (tokens.size() == 2 && tokens[0] == "next_segment") {
      if (!ParseInt(tokens[1], &manifest.next_segment)) {
        return DataLossError("manifest bad next_segment");
      }
    } else if (tokens.size() == 6 && tokens[0] == "segment") {
      ManifestSegment segment;
      segment.file = std::string(tokens[2]);
      if (!ParseInt(tokens[1], &segment.shard) || segment.shard < 0 ||
          segment.file.empty() ||
          segment.file.find('/') != std::string::npos ||
          !ParseInt(tokens[3], &segment.rows) ||
          !ParseInt(tokens[4], &segment.min_row_id) ||
          !ParseInt(tokens[5], &segment.max_row_id)) {
        return DataLossError("manifest bad segment line");
      }
      manifest.segments.push_back(std::move(segment));
    } else {
      return DataLossError("manifest unknown line");
    }
  }
  if (!saw_header || !saw_shards) {
    return DataLossError("manifest incomplete");
  }
  for (const ManifestSegment& segment : manifest.segments) {
    if (segment.shard >= manifest.num_shards) {
      return DataLossError("manifest segment shard out of range");
    }
  }
  return manifest;
}

StatusOr<Manifest> ReadManifest(Env* env, const std::string& dir) {
  StatusOr<std::string> text =
      env->ReadFileToString(dir + "/" + kManifestFile);
  if (!text.ok()) return text.status();
  StatusOr<Manifest> manifest = ParseManifest(text.value());
  if (!manifest.ok()) {
    return Status(StatusCode::kDataLoss, dir + "/" + kManifestFile + ": " +
                                             manifest.status().message());
  }
  return manifest;
}

Status WriteManifest(Env* env, const std::string& dir,
                     const Manifest& manifest) {
  std::string path = dir + "/" + kManifestFile;
  std::string tmp = path + ".tmp";
  StatusOr<std::unique_ptr<WritableFile>> file =
      env->NewWritableFile(tmp, /*truncate=*/true);
  if (!file.ok()) return file.status();
  GOALEX_RETURN_IF_ERROR((*file)->Append(manifest.Serialize()));
  GOALEX_RETURN_IF_ERROR((*file)->Sync());
  GOALEX_RETURN_IF_ERROR((*file)->Close());
  return env->Rename(tmp, path);
}

}  // namespace goalex::storage
