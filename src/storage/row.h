#ifndef GOALEX_STORAGE_ROW_H_
#define GOALEX_STORAGE_ROW_H_

#include <cstdint>
#include <string>

#include "data/schema.h"

namespace goalex::storage {

/// A stored row of the objective database: the extracted details plus source
/// metadata. Defined at the storage layer so the WAL and segment codecs can
/// speak it directly; `core::ObjectiveDatabase` re-exports it as
/// `core::DbRow` (the public query-result type).
struct Row {
  int64_t row_id = 0;
  std::string company;
  std::string document;
  int page = 0;
  data::DetailRecord record;
};

/// Appends the canonical binary encoding of `row` to `out` (DESIGN.md
/// §12.2): row_id i64, page i32, then length-prefixed company, document,
/// objective_id, objective_text, then a u32 field count and length-prefixed
/// kind/value pairs. Fields encode in std::map order, so the encoding of a
/// row is deterministic. The same payload is used for WAL records and for
/// the row-data section of sealed segments.
void EncodeRow(const Row& row, std::string* out);

/// Decodes one row from `data[*pos, size)`, advancing `*pos` past it.
/// Every length is bounds-checked against the remaining bytes; on any
/// malformed input (truncation, oversized length, trailing garbage inside
/// the row) returns false with `*pos` unspecified — never reads out of
/// bounds. `out` may hold partial fields on failure.
bool DecodeRow(const uint8_t* data, size_t size, size_t* pos, Row* out);

/// Convenience: decodes a row that must occupy `payload` exactly (the WAL
/// record case). Returns false on any error or trailing bytes.
bool DecodeRowExact(std::string_view payload, Row* out);

/// The deadline field of a record under either schema (Sustainability Goals
/// "Deadline", NetZeroFacts "TargetYear"), normalized to a calendar year via
/// values::NormalizeDeadlineYear — the key the deadline-year index is
/// built on.
std::optional<int> DeadlineYearOfRecord(const data::DetailRecord& record);

}  // namespace goalex::storage

#endif  // GOALEX_STORAGE_ROW_H_
