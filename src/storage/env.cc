#include "storage/env.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace goalex::storage {
namespace {

std::string Errno(const std::string& op, const std::string& path) {
  return op + " " + path + ": " + std::strerror(errno);
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) Close();
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return InternalError("append to closed file " + path_);
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return InternalError(Errno("write", path_));
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (fd_ < 0) return InternalError("sync of closed file " + path_);
    if (::fsync(fd_) != 0) return InternalError(Errno("fsync", path_));
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return InternalError("double close of " + path_);
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return InternalError(Errno("close", path_));
    return Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixMmapFile : public MmapFile {
 public:
  PosixMmapFile(void* base, size_t size) : base_(base), size_(size) {}

  ~PosixMmapFile() override {
    if (base_ != nullptr) ::munmap(base_, size_);
  }

  const uint8_t* data() const override {
    return static_cast<const uint8_t*>(base_);
  }
  size_t size() const override { return size_; }

 private:
  void* base_;
  size_t size_;
};

class PosixEnv : public Env {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return InternalError(Errno("open", path));
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  StatusOr<std::string> ReadFileToString(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) return NotFoundError("no such file: " + path);
      return InternalError(Errno("open", path));
    }
    std::string out;
    char buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        Status status = InternalError(Errno("read", path));
        ::close(fd);
        return status;
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  StatusOr<std::unique_ptr<MmapFile>> MmapReadOnly(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) return NotFoundError("no such file: " + path);
      return InternalError(Errno("open", path));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      Status status = InternalError(Errno("fstat", path));
      ::close(fd);
      return status;
    }
    size_t size = static_cast<size_t>(st.st_size);
    void* base = nullptr;
    if (size > 0) {
      base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (base == MAP_FAILED) {
        Status status = InternalError(Errno("mmap", path));
        ::close(fd);
        return status;
      }
    }
    ::close(fd);  // The mapping outlives the descriptor.
    return std::unique_ptr<MmapFile>(
        std::make_unique<PosixMmapFile>(size > 0 ? base : nullptr, size));
  }

  StatusOr<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) return NotFoundError("no such file: " + path);
      return InternalError(Errno("stat", path));
    }
    return static_cast<uint64_t>(st.st_size);
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return InternalError(Errno("truncate", path));
    }
    return Status::Ok();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return InternalError(Errno("rename", from + " -> " + to));
    }
    return Status::Ok();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return InternalError(Errno("unlink", path));
    }
    return Status::Ok();
  }

  Status CreateDirs(const std::string& dir) override {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      return InternalError("cannot create directory " + dir + ": " +
                           ec.message());
    }
    return Status::Ok();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* const env = new PosixEnv();
  return env;
}

}  // namespace goalex::storage
