#ifndef GOALEX_STORAGE_FAULT_ENV_H_
#define GOALEX_STORAGE_FAULT_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "storage/env.h"

namespace goalex::storage {

/// Fault-injection Env for the crash/corruption harness (DESIGN.md §12.5).
/// Wraps a real Env and forwards everything until a configured write budget
/// is exhausted; from that instant the "process is dead": an in-flight
/// Append persists only the bytes that fit the budget (a torn write) and
/// every subsequent mutating operation — Append, Sync, Truncate, Rename,
/// RemoveFile, CreateDirs, NewWritableFile — fails with kUnavailable-style
/// InternalError. Reads keep working so a test can inspect the "disk".
///
/// Driving `SetWriteBudget` across every offset in [0, TotalBytesWritten()]
/// is the kill-at-every-write-offset sweep: each budget value simulates a
/// crash at that exact byte of the storage write stream.
class FaultInjectionEnv : public Env {
 public:
  /// Wraps `base` (not owned; typically Env::Default()).
  explicit FaultInjectionEnv(Env* base);

  /// Sets the remaining write budget in bytes. Negative = unlimited
  /// (default). Resets the killed state.
  void SetWriteBudget(int64_t bytes);

  /// True once the budget has been exhausted (the crash happened).
  bool killed() const { return killed_.load(std::memory_order_acquire); }

  /// Total payload bytes successfully appended through this env since
  /// construction (torn bytes included).
  uint64_t TotalBytesWritten() const {
    return total_written_.load(std::memory_order_acquire);
  }

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  StatusOr<std::string> ReadFileToString(const std::string& path) override;
  StatusOr<std::unique_ptr<MmapFile>> MmapReadOnly(
      const std::string& path) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDirs(const std::string& dir) override;

  /// Internal (used by the wrapped WritableFile): claims up to `want`
  /// bytes from the budget. Returns how many bytes may still be written (0
  /// once dead); flips `killed_` when the claim is cut short.
  size_t ClaimBytes(size_t want);
  /// Internal: the status every post-kill mutation fails with.
  Status DeadStatus() const;

 private:
  Env* base_;
  std::atomic<int64_t> budget_{-1};
  std::atomic<bool> killed_{false};
  std::atomic<uint64_t> total_written_{0};
};

}  // namespace goalex::storage

#endif  // GOALEX_STORAGE_FAULT_ENV_H_
