#ifndef GOALEX_STORAGE_CRC32_H_
#define GOALEX_STORAGE_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace goalex::storage {

/// Standard CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the
/// checksum behind the WAL record framing and the sealed-segment body
/// checksum (DESIGN.md §12). Implemented slicing-by-8 so the mmap cold-start
/// verification pass runs at memory bandwidth, not byte-at-a-time speed.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace goalex::storage

#endif  // GOALEX_STORAGE_CRC32_H_
