#ifndef GOALEX_STORAGE_SEGMENT_H_
#define GOALEX_STORAGE_SEGMENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/env.h"
#include "storage/row.h"

namespace goalex::storage {

/// Secondary-index sections of a sealed segment. Each is a sorted
/// string-keyed dictionary of posting lists (ascending row ordinals within
/// the segment), laid out flat so lookups are binary searches over the
/// mmap'ed bytes — no deserialization on load.
enum class SegmentIndex : uint32_t {
  kCompany = 4,       ///< company -> rows
  kFieldKind = 5,     ///< field kind (non-empty value) -> rows
  kFieldValue = 6,    ///< FieldValueKey(kind, value) -> rows
  kDeadlineYear = 7,  ///< YearKey(normalized deadline year) -> rows
  kText = 8,          ///< lowercased word term -> rows (objective + details)
};

/// Composite key of the exact-value index.
std::string FieldValueKey(std::string_view kind, std::string_view value);

/// Order-preserving key encoding of a (possibly negative) year: biased and
/// zero-padded so lexicographic order over keys equals numeric order over
/// years, which is what makes deadline range scans a dictionary walk.
std::string YearKey(int year);

/// Lowercased indexable terms of `text`, in token order with duplicates
/// preserved (the phrase side needs the sequence). A token is indexable
/// when it contains an alphanumeric byte or any non-ASCII byte; pure
/// punctuation tokens are dropped, mirroring what the index stores.
std::vector<std::string> TextIndexTerms(std::string_view text);

/// True when `terms` (from TextIndexTerms) appear contiguously, in order,
/// in the token stream of `text` (case-insensitive). Empty phrases match.
bool ContainsPhrase(std::string_view text,
                    const std::vector<std::string>& terms);

/// A posting list inside an mmap'ed segment: `count` little-endian u32
/// ordinals, ascending. Accessed by value copy per element (the bytes may
/// be unaligned).
class PostingsView {
 public:
  PostingsView() = default;
  PostingsView(const uint8_t* base, size_t count)
      : base_(base), count_(count) {}

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  uint32_t At(size_t i) const;

 private:
  const uint8_t* base_ = nullptr;
  size_t count_ = 0;
};

/// Builds a sealed-segment file from rows added in ascending row-id order:
/// columnar row storage plus every secondary index and the inverted text
/// index, serialized with a trailing section table and a whole-body CRC-32
/// (format: DESIGN.md §12.2).
class SegmentBuilder {
 public:
  /// Adds a row. Rows must arrive in strictly ascending row_id order.
  void Add(const Row& row);

  size_t num_rows() const { return row_ids_.size(); }

  /// Serializes the complete segment file image.
  std::string Serialize() const;

  /// Writes Serialize() to `path` via `env` and fsyncs it. The caller is
  /// responsible for the temp-file + rename commit protocol.
  Status WriteTo(Env* env, const std::string& path) const;

 private:
  std::vector<int64_t> row_ids_;
  std::vector<uint64_t> row_offsets_{0};
  std::string row_data_;
  /// std::map keeps keys sorted, which the on-disk dictionaries require.
  std::map<std::string, std::vector<uint32_t>, std::less<>> company_;
  std::map<std::string, std::vector<uint32_t>, std::less<>> field_kind_;
  std::map<std::string, std::vector<uint32_t>, std::less<>> field_value_;
  std::map<std::string, std::vector<uint32_t>, std::less<>> year_;
  std::map<std::string, std::vector<uint32_t>, std::less<>> text_;
  std::map<std::string, int64_t> company_rows_;
  std::map<std::string, int64_t> company_kind_rows_;
};

/// An immutable, mmap-backed sealed segment. Open() maps the file, checks
/// the framing magic and the whole-body CRC-32 (one streaming pass at
/// memory bandwidth — this is what keeps million-row cold starts fast while
/// still turning any bit flip into a clean DataLoss), and binds section
/// pointers; rows and posting lists are then read straight out of the
/// mapping, materialized only when a query touches them.
///
/// Every accessor is bounds-checked against the mapped region, so even a
/// hypothetically corrupt segment (CRC collision) degrades to empty/missing
/// results, never to out-of-bounds reads.
class SealedSegment {
 public:
  static StatusOr<std::shared_ptr<SealedSegment>> Open(
      Env* env, const std::string& path);

  uint64_t num_rows() const { return row_count_; }
  const std::string& path() const { return path_; }

  /// Row id stored at `ordinal` (< num_rows).
  int64_t RowIdAt(uint64_t ordinal) const;
  int64_t min_row_id() const { return row_count_ == 0 ? 0 : RowIdAt(0); }
  int64_t max_row_id() const {
    return row_count_ == 0 ? -1 : RowIdAt(row_count_ - 1);
  }

  /// Materializes the row at `ordinal`. False only on a corrupt segment.
  bool ReadRow(uint64_t ordinal, Row* out) const;

  /// Binary-searches the row-id column. nullopt when absent.
  std::optional<uint64_t> FindRowId(int64_t row_id) const;

  /// Posting list for `key` in `index` (empty when the key is absent).
  PostingsView Postings(SegmentIndex index, std::string_view key) const;

  /// Visits every key of `index` in ascending order.
  void ForEachKey(SegmentIndex index,
                  const std::function<void(std::string_view)>& fn) const;

  /// Visits the posting list of every deadline year in [min_year,
  /// max_year], ascending.
  void ForEachYearInRange(
      int min_year, int max_year,
      const std::function<void(const PostingsView&)>& fn) const;

  /// Per-company row counts (STATS section, parsed at open).
  const std::unordered_map<std::string, int64_t>& company_rows() const {
    return company_rows_;
  }
  /// Per-(company, kind) non-empty-field counts, keyed
  /// company + '\x1f' + kind.
  const std::unordered_map<std::string, int64_t>& company_kind_rows() const {
    return company_kind_rows_;
  }

 private:
  /// A bound string-keyed dictionary section.
  struct Dict {
    uint64_t term_count = 0;
    const uint8_t* key_offsets = nullptr;   ///< u64[term_count + 1]
    const uint8_t* post_offsets = nullptr;  ///< u64[term_count + 1]
    const uint8_t* key_blob = nullptr;
    uint64_t key_blob_size = 0;
    const uint8_t* postings = nullptr;  ///< u32[total_postings]
    uint64_t total_postings = 0;

    std::string_view KeyAt(uint64_t i) const;
    PostingsView PostingsAt(uint64_t i) const;
    /// Index of the first key >= `key`.
    uint64_t LowerBound(std::string_view key) const;
  };

  SealedSegment() = default;

  Status Bind();  // Parses the section table and binds pointers.
  const Dict* DictFor(SegmentIndex index) const;

  std::string path_;
  std::unique_ptr<MmapFile> file_;
  uint64_t row_count_ = 0;
  const uint8_t* row_ids_ = nullptr;      ///< i64[row_count]
  const uint8_t* row_offsets_ = nullptr;  ///< u64[row_count + 1]
  const uint8_t* row_data_ = nullptr;
  uint64_t row_data_size_ = 0;
  Dict company_;
  Dict field_kind_;
  Dict field_value_;
  Dict year_;
  Dict text_;
  std::unordered_map<std::string, int64_t> company_rows_;
  std::unordered_map<std::string, int64_t> company_kind_rows_;
};

}  // namespace goalex::storage

#endif  // GOALEX_STORAGE_SEGMENT_H_
