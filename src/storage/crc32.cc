#include "storage/crc32.h"

#include <array>
#include <cstring>

namespace goalex::storage {
namespace {

/// 8 slicing tables, generated once at first use. Table 0 is the classic
/// byte-at-a-time table; table k extends a CRC whose input is k bytes of
/// zero padding, which is what lets the hot loop fold 8 input bytes per
/// iteration.
struct Crc32Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32Tables() {
    constexpr uint32_t kPoly = 0xEDB88320u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = t[0][i];
      for (int slice = 1; slice < 8; ++slice) {
        crc = t[0][crc & 0xFFu] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
  }
};

const Crc32Tables& Tables() {
  static const Crc32Tables* const tables = new Crc32Tables();
  return *tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const auto& t = Tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;

  // Head: align the bulk loop to an 8-byte boundary of the buffer.
  while (size > 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --size;
  }
  // Bulk: 8 bytes per iteration.
  while (size >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  // Tail.
  while (size > 0) {
    crc = t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --size;
  }
  return ~crc;
}

}  // namespace goalex::storage
