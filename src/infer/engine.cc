#include "infer/engine.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "common/check.h"

namespace goalex::infer {
namespace {

uint64_t NextSerial() {
  static std::atomic<uint64_t> serial{0};
  return serial.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Engine::Engine(Plan plan) : plan_(std::move(plan)), serial_(NextSerial()) {
  GOALEX_CHECK(!plan_.steps.empty());
  GOALEX_CHECK_GT(plan_.max_seq_len, 0);
  if (obs::Active()) {
    auto& registry = obs::MetricsRegistry::Default();
    registry.GetCounter("infer.plan.compiled")->Increment();
    executions_ = registry.GetCounter("infer.plan.executions");
    contexts_ = registry.GetCounter("infer.contexts");
    arena_bytes_ = registry.GetGauge("infer.arena.bytes");
  }
}

Engine Engine::ForTokenClassifier(const nn::TokenClassifier& model) {
  return Engine(CompileTokenClassifier(model));
}

Engine Engine::ForSequenceClassifier(const nn::SequenceClassifier& model) {
  return Engine(CompileSequenceClassifier(model));
}

std::unique_ptr<ExecutionContext> Engine::NewContext() const {
  auto ctx = std::make_unique<ExecutionContext>(plan_);
  if (contexts_ != nullptr) contexts_->Increment();
  if (arena_bytes_ != nullptr) {
    arena_bytes_->Add(static_cast<double>(ctx->arena_bytes()));
  }
  return ctx;
}

ExecutionContext& Engine::ThreadContext() const {
  // One context per (thread, engine). Keyed by serial rather than `this`:
  // addresses can be reused by a later engine, serials cannot.
  thread_local std::unordered_map<uint64_t,
                                  std::unique_ptr<ExecutionContext>>
      cache;
  std::unique_ptr<ExecutionContext>& slot = cache[serial_];
  if (slot == nullptr) slot = NewContext();
  return *slot;
}

tensor::TensorView Engine::Execute(const std::vector<int32_t>& ids,
                                   ExecutionContext& ctx) const {
  if (ids.empty()) {
    return tensor::TensorView(nullptr, 0, plan_.logits_cols);
  }
  const int64_t t = std::min<int64_t>(static_cast<int64_t>(ids.size()),
                                      plan_.max_seq_len);
  for (const Plan::Step& step : plan_.steps) {
    const int64_t rows = step.rows > 0 ? step.rows : t;
    float* out = ctx.slot(step.out);
    switch (step.op) {
      case Plan::Op::kEmbed:
        tensor::EmbedSumForward(plan_.weights[step.w0].data(),
                                plan_.vocab_size,
                                plan_.weights[step.w1].data(), ids.data(), t,
                                step.cols_out, out);
        break;
      case Plan::Op::kLayerNorm:
        tensor::LayerNormForward(ctx.slot(step.in0),
                                 plan_.weights[step.w0].data(),
                                 plan_.weights[step.w1].data(), out, rows,
                                 step.cols_in, 1e-5f, /*xhat=*/nullptr,
                                 /*inv_std=*/nullptr);
        break;
      case Plan::Op::kLinear:
        tensor::LinearForward(ctx.slot(step.in0),
                              plan_.weights[step.w0].data(),
                              plan_.weights[step.w1].data(), out, rows,
                              step.cols_in, step.cols_out);
        break;
      case Plan::Op::kAttention:
        tensor::AttentionForward(ctx.slot(step.in0), ctx.slot(step.in1),
                                 ctx.slot(step.in2), out, rows, step.cols_in,
                                 plan_.heads, /*probs=*/nullptr,
                                 ctx.attention_scratch());
        break;
      case Plan::Op::kGelu:
        tensor::GeluForward(ctx.slot(step.in0), out, rows * step.cols_in);
        break;
      case Plan::Op::kAdd:
        tensor::AddForward(ctx.slot(step.in0), ctx.slot(step.in1), out,
                           rows * step.cols_in);
        break;
      case Plan::Op::kMeanRows:
        tensor::MeanRowsForward(ctx.slot(step.in0), out, t, step.cols_in);
        break;
    }
  }
  if (executions_ != nullptr) executions_->Increment();
  return tensor::TensorView(ctx.slot(plan_.logits_offset),
                            plan_.mean_pool ? 1 : t, plan_.logits_cols);
}

tensor::TensorView Engine::Logits(const std::vector<int32_t>& ids) const {
  return Execute(ids, ThreadContext());
}

std::vector<int32_t> Engine::PredictTokens(
    const std::vector<int32_t>& ids) const {
  GOALEX_CHECK(!plan_.mean_pool);
  if (ids.empty()) return {};
  tensor::TensorView logits = Logits(ids);
  std::vector<int32_t> labels(static_cast<size_t>(logits.rows()));
  for (int64_t i = 0; i < logits.rows(); ++i) {
    labels[static_cast<size_t>(i)] =
        tensor::ArgmaxRow(logits.row(i), logits.cols());
  }
  return labels;
}

int32_t Engine::PredictClass(const std::vector<int32_t>& ids) const {
  GOALEX_CHECK(plan_.mean_pool);
  tensor::TensorView logits = Logits(ids);
  GOALEX_CHECK_EQ(logits.rows(), 1);
  return tensor::ArgmaxRow(logits.row(0), logits.cols());
}

}  // namespace goalex::infer
