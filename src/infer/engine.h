#ifndef GOALEX_INFER_ENGINE_H_
#define GOALEX_INFER_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "infer/plan.h"
#include "obs/metrics.h"
#include "tensor/arena.h"
#include "tensor/forward.h"
#include "tensor/view.h"

namespace goalex::infer {

/// Per-worker execution scratch: one Arena allocation sized by the plan's
/// peak requirement, plus reusable attention head buffers. Created once per
/// thread and reused across forward passes — the steady-state hot path does
/// zero heap allocation. Not thread-safe; one context per worker.
class ExecutionContext {
 public:
  explicit ExecutionContext(const Plan& plan)
      : arena_(plan.arena_floats),
        base_(plan.arena_floats > 0 ? arena_.Allocate(plan.arena_floats)
                                    : nullptr) {}

  float* slot(int64_t offset) { return base_ + offset; }
  tensor::AttentionScratch& attention_scratch() { return attn_; }
  size_t arena_bytes() const { return arena_.bytes(); }

 private:
  tensor::Arena arena_;
  float* base_;
  tensor::AttentionScratch attn_;
};

/// Graph-free inference engine: executes a compiled Plan against per-thread
/// arenas. Outputs are bit-identical to the autograd evaluation path
/// (nn::TokenClassifier::ForwardLogits / nn::SequenceClassifier) because
/// both strategies run the same forward kernels (tensor/forward.h) in the
/// same order — the engine only removes the tape: no Node allocations, no
/// std::function backward closures, no per-op heap tensors.
///
/// Thread-safe after construction: the plan and borrowed weights are
/// immutable; each calling thread lazily gets its own ExecutionContext.
/// The borrowed weights share storage with the source module, so the
/// module must outlive the engine (in-place weight updates, e.g. from
/// nn::LoadParameters, remain visible without recompiling).
class Engine {
 public:
  explicit Engine(Plan plan);

  /// Compiles the forward pass of a trained model. Call at Train()/Load()
  /// completion; the model must outlive the engine.
  static Engine ForTokenClassifier(const nn::TokenClassifier& model);
  static Engine ForSequenceClassifier(const nn::SequenceClassifier& model);

  /// Runs the plan for `ids` in `ctx` and returns a view of the logits
  /// ([T', logits_cols] for token plans, [1, logits_cols] for sequence
  /// plans, where T' = min(ids.size(), max_seq_len)). The view aliases the
  /// context's arena and is valid until the next Execute on that context.
  /// Empty `ids` yields an empty view.
  tensor::TensorView Execute(const std::vector<int32_t>& ids,
                             ExecutionContext& ctx) const;

  /// Greedy per-token labels (argmax per logits row) using this thread's
  /// cached context. Bit-identical to nn::TokenClassifier::Predict.
  std::vector<int32_t> PredictTokens(const std::vector<int32_t>& ids) const;

  /// Argmax class of a sequence plan using this thread's cached context.
  /// Bit-identical to nn::SequenceClassifier::Predict.
  int32_t PredictClass(const std::vector<int32_t>& ids) const;

  /// Logits via this thread's cached context (see Execute for lifetime).
  tensor::TensorView Logits(const std::vector<int32_t>& ids) const;

  /// Creates a fresh execution context (explicit-context callers: tests,
  /// benchmark harnesses).
  std::unique_ptr<ExecutionContext> NewContext() const;

  const Plan& plan() const { return plan_; }

  /// Scratch bytes one worker context allocates for this plan.
  size_t arena_bytes_per_context() const {
    return plan_.arena_floats * sizeof(float);
  }

 private:
  /// This thread's context for this engine, created on first use.
  ExecutionContext& ThreadContext() const;

  Plan plan_;
  /// Distinguishes engines in the per-thread context cache (addresses can
  /// be reused; serials cannot).
  uint64_t serial_;

  // Observability handles, resolved once at construction (null when
  // instrumentation is inactive): compiled-plan / execution counters and
  // the total arena bytes held by live worker contexts.
  obs::Counter* executions_ = nullptr;
  obs::Counter* contexts_ = nullptr;
  obs::Gauge* arena_bytes_ = nullptr;
};

}  // namespace goalex::infer

#endif  // GOALEX_INFER_ENGINE_H_
