#ifndef GOALEX_INFER_PLAN_H_
#define GOALEX_INFER_PLAN_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace goalex::nn {
class TokenClassifier;
class SequenceClassifier;
}  // namespace goalex::nn

namespace goalex::infer {

/// A compiled, graph-free forward pass. Compilation walks the trained
/// model's architecture exactly once and freezes:
///   - the op sequence (a flat step list — no Node graph, no std::function
///     closures, no shared_ptr traffic at execution time),
///   - the scratch layout (every intermediate activation gets a fixed float
///     offset into a per-worker Arena sized by max_seq_len), and
///   - the weights (borrowed from the module's parameter tensors by shared
///     storage — zero copies, so optimizer/Load updates written in place
///     remain visible).
///
/// Buffer rows scale with the live sequence length T <= max_seq_len at
/// execution time; columns and offsets are fixed, so a shorter sequence
/// simply uses a prefix of each slot.
struct Plan {
  enum class Op : uint8_t {
    kEmbed,      ///< out[T,d] = token_table[ids] + pos_table[0..T)
    kLayerNorm,  ///< out = LN(in0) with gamma w0, beta w1
    kLinear,     ///< out = in0 * W(w0) + bias(w1)
    kAttention,  ///< out = MHA(in0, in1, in2)
    kGelu,       ///< out = gelu(in0), elementwise
    kAdd,        ///< out = in0 + in1, elementwise (residual)
    kMeanRows,   ///< out[1,n] = mean over the T rows of in0
  };

  struct Step {
    Op op;
    int64_t in0 = -1;  ///< Arena float offsets of operand slots.
    int64_t in1 = -1;
    int64_t in2 = -1;
    int64_t out = -1;
    int64_t cols_in = 0;   ///< Operand columns (d_model / ffn_dim / ...).
    int64_t cols_out = 0;  ///< Result columns.
    /// Fixed row count for steps past mean pooling; 0 = the live T.
    int64_t rows = 0;
    int32_t w0 = -1;  ///< Indices into Plan::weights.
    int32_t w1 = -1;
  };

  std::vector<Step> steps;
  /// Borrowed parameter tensors (shared storage with the nn::Module — the
  /// module must outlive the plan).
  std::vector<tensor::Tensor> weights;

  int32_t max_seq_len = 0;
  int32_t d_model = 0;
  int32_t heads = 0;
  int64_t vocab_size = 0;

  /// Total scratch floats one worker needs (a function of max_seq_len).
  size_t arena_floats = 0;

  /// Where the final logits land.
  int64_t logits_offset = 0;
  int64_t logits_cols = 0;
  /// True for sequence classification (one pooled logits row); false for
  /// token classification (T logits rows).
  bool mean_pool = false;
};

/// Compiles the forward pass of a trained token classifier. Call after
/// Train()/Load() completes; the returned plan borrows the live weights.
Plan CompileTokenClassifier(const nn::TokenClassifier& model);

/// Compiles the forward pass of a trained sequence classifier.
Plan CompileSequenceClassifier(const nn::SequenceClassifier& model);

}  // namespace goalex::infer

#endif  // GOALEX_INFER_PLAN_H_
