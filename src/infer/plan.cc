#include "infer/plan.h"

#include "common/check.h"
#include "nn/transformer.h"

namespace goalex::infer {
namespace {

/// Incrementally lays out the plan: slots are fixed float ranges in the
/// worker arena, weights are borrowed parameter tensors.
class PlanBuilder {
 public:
  explicit PlanBuilder(const nn::TransformerConfig& config) {
    plan_.max_seq_len = config.max_seq_len;
    plan_.d_model = config.d_model;
    plan_.heads = config.heads;
    plan_.vocab_size = config.vocab_size;
  }

  /// Reserves a [max_seq_len, cols] slot (or [rows, cols] when fixed).
  int64_t Slot(int64_t cols, int64_t rows = 0) {
    int64_t offset = static_cast<int64_t>(plan_.arena_floats);
    int64_t r = rows > 0 ? rows : plan_.max_seq_len;
    plan_.arena_floats += static_cast<size_t>(r * cols);
    return offset;
  }

  int32_t Weight(const tensor::Var& var) {
    GOALEX_CHECK(var != nullptr);
    plan_.weights.push_back(var->value());  // Shared storage, no copy.
    return static_cast<int32_t>(plan_.weights.size() - 1);
  }

  void Embed(const tensor::Var& token_table, const tensor::Var& pos_table,
             int64_t out) {
    Plan::Step step;
    step.op = Plan::Op::kEmbed;
    step.out = out;
    step.cols_out = plan_.d_model;
    step.w0 = Weight(token_table);
    step.w1 = Weight(pos_table);
    plan_.steps.push_back(step);
  }

  void LayerNorm(int64_t in, int64_t out, const tensor::Var& gamma,
                 const tensor::Var& beta, int64_t rows = 0) {
    Plan::Step step;
    step.op = Plan::Op::kLayerNorm;
    step.in0 = in;
    step.out = out;
    step.cols_in = step.cols_out = plan_.d_model;
    step.rows = rows;
    step.w0 = Weight(gamma);
    step.w1 = Weight(beta);
    plan_.steps.push_back(step);
  }

  void Linear(int64_t in, int64_t out, const nn::Linear& layer,
              int64_t rows = 0) {
    Plan::Step step;
    step.op = Plan::Op::kLinear;
    step.in0 = in;
    step.out = out;
    step.cols_in = layer.in_features();
    step.cols_out = layer.out_features();
    step.rows = rows;
    step.w0 = Weight(layer.weight());
    step.w1 = Weight(layer.bias());
    plan_.steps.push_back(step);
  }

  void Attention(int64_t q, int64_t k, int64_t v, int64_t out) {
    Plan::Step step;
    step.op = Plan::Op::kAttention;
    step.in0 = q;
    step.in1 = k;
    step.in2 = v;
    step.out = out;
    step.cols_in = step.cols_out = plan_.d_model;
    plan_.steps.push_back(step);
  }

  void Gelu(int64_t in, int64_t out, int64_t cols) {
    Plan::Step step;
    step.op = Plan::Op::kGelu;
    step.in0 = in;
    step.out = out;
    step.cols_in = step.cols_out = cols;
    plan_.steps.push_back(step);
  }

  void Add(int64_t a, int64_t b, int64_t out) {
    Plan::Step step;
    step.op = Plan::Op::kAdd;
    step.in0 = a;
    step.in1 = b;
    step.out = out;
    step.cols_in = step.cols_out = plan_.d_model;
    plan_.steps.push_back(step);
  }

  void MeanRows(int64_t in, int64_t out) {
    Plan::Step step;
    step.op = Plan::Op::kMeanRows;
    step.in0 = in;
    step.out = out;
    step.cols_in = step.cols_out = plan_.d_model;
    plan_.steps.push_back(step);
  }

  Plan Take() { return std::move(plan_); }

 private:
  Plan plan_;
};

/// Emits embed + encoder layers + final LayerNorm. Returns the slot holding
/// the final [T, d_model] hidden states.
int64_t BuildEncoder(const nn::TransformerEncoder& encoder,
                     PlanBuilder& builder) {
  const nn::TransformerConfig& config = encoder.config();
  int64_t d = config.d_model;
  int64_t ffn = config.ffn_dim;

  // Slot layout mirrors the tape's value flow; slots are reused across
  // layers, which is what bounds the arena to O(max_seq_len * d_model).
  int64_t s_x = builder.Slot(d);     // Residual stream.
  int64_t s_h = builder.Slot(d);     // LayerNorm output.
  int64_t s_q = builder.Slot(d);
  int64_t s_k = builder.Slot(d);
  int64_t s_v = builder.Slot(d);
  int64_t s_attn = builder.Slot(d);  // Attention core / FFN output.
  int64_t s_x1 = builder.Slot(d);    // Post-attention residual.
  int64_t s_f1 = builder.Slot(ffn);  // FFN hidden pre-activation.
  int64_t s_f2 = builder.Slot(ffn);  // FFN hidden post-GELU.

  builder.Embed(encoder.token_embedding(), encoder.position_embedding(),
                s_x);
  for (const auto& layer : encoder.layers()) {
    // x1 = x + o_proj(Attn(LN1(x)))
    builder.LayerNorm(s_x, s_h, layer->ln1_gamma(), layer->ln1_beta());
    builder.Linear(s_h, s_q, layer->q_proj());
    builder.Linear(s_h, s_k, layer->k_proj());
    builder.Linear(s_h, s_v, layer->v_proj());
    builder.Attention(s_q, s_k, s_v, s_attn);
    builder.Linear(s_attn, s_h, layer->o_proj());
    builder.Add(s_x, s_h, s_x1);
    // x = x1 + ffn_out(Gelu(ffn_in(LN2(x1))))
    builder.LayerNorm(s_x1, s_h, layer->ln2_gamma(), layer->ln2_beta());
    builder.Linear(s_h, s_f1, layer->ffn_in());
    builder.Gelu(s_f1, s_f2, ffn);
    builder.Linear(s_f2, s_attn, layer->ffn_out());
    builder.Add(s_x1, s_attn, s_x);
  }
  builder.LayerNorm(s_x, s_h, encoder.final_gamma(), encoder.final_beta());
  return s_h;
}

}  // namespace

Plan CompileTokenClassifier(const nn::TokenClassifier& model) {
  PlanBuilder builder(model.encoder().config());
  int64_t s_states = BuildEncoder(model.encoder(), builder);
  int64_t s_logits = builder.Slot(model.num_labels());
  builder.Linear(s_states, s_logits, model.head());

  Plan plan = builder.Take();
  plan.logits_offset = s_logits;
  plan.logits_cols = model.num_labels();
  plan.mean_pool = false;
  return plan;
}

Plan CompileSequenceClassifier(const nn::SequenceClassifier& model) {
  PlanBuilder builder(model.encoder().config());
  int64_t s_states = BuildEncoder(model.encoder(), builder);
  int64_t s_pooled = builder.Slot(model.encoder().config().d_model,
                                  /*rows=*/1);
  int64_t s_logits = builder.Slot(model.num_classes(), /*rows=*/1);
  builder.MeanRows(s_states, s_pooled);
  builder.Linear(s_pooled, s_logits, model.head(), /*rows=*/1);

  Plan plan = builder.Take();
  plan.logits_offset = s_logits;
  plan.logits_cols = model.num_classes();
  plan.mean_pool = true;
  return plan;
}

}  // namespace goalex::infer
