#ifndef GOALEX_INFER_PACKED_H_
#define GOALEX_INFER_PACKED_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/transformer.h"
#include "obs/metrics.h"
#include "tensor/qlinear.h"
#include "tensor/tensor.h"

namespace goalex::infer {

/// Packed-batch inference (DESIGN.md §14): the cross-example counterpart to
/// Engine's per-example plans. Variable-length sequences are bucketed by
/// length into capacity-bounded chunks and laid out token-major with a
/// per-sequence offsets table; every layer then runs as one padding-free
/// GEMM over the packed token axis, with attention streaming per-sequence
/// tiles (tensor/packed.h). Float outputs are bit-identical per sequence to
/// Engine::Execute; the optional int8 mode trades exactness for throughput.

/// One packed batch: token ids for all member sequences back to back.
/// Sequence s (0 ≤ s < size()) owns ids[offsets[s]..offsets[s+1]) and came
/// from the caller's sequence index `sequence[s]`.
struct PackedChunk {
  std::vector<int32_t> ids;      ///< [tokens()] packed token ids.
  std::vector<int64_t> offsets;  ///< [size() + 1] boundaries into ids.
  std::vector<size_t> sequence;  ///< [size()] caller index per member.

  int64_t tokens() const { return static_cast<int64_t>(ids.size()); }
  int64_t size() const { return static_cast<int64_t>(sequence.size()); }
};

/// Buckets `sequences` by token length into chunks of at most
/// `chunk_tokens` packed tokens. Sequences are truncated to `max_seq_len`
/// (matching Engine::Execute) and empty sequences are skipped — callers
/// get no labels for them, exactly like the per-example path. Packing is
/// deterministic: a stable sort by length (ties keep submission order)
/// followed by greedy capacity-bounded fill, so equal inputs always
/// produce equal chunks. A single sequence longer than `chunk_tokens` is
/// admitted as an oversize chunk of its own rather than rejected.
std::vector<PackedChunk> PackByLength(
    const std::vector<const std::vector<int32_t>*>& sequences,
    int64_t max_seq_len, int64_t chunk_tokens);

struct PackedEngineOptions {
  /// Packed-token capacity per chunk. Bounds peak activation memory
  /// (roughly chunk_tokens · (7·d_model + ffn_dim + head columns) floats)
  /// and is the denominator of the batch-fill metric.
  int64_t chunk_tokens = 512;
  /// Run the six per-layer projections as int8 kernels (tensor/qlinear.h)
  /// instead of float GEMMs. Embeddings, layer norms, attention, and the
  /// classifier head stay float.
  bool quantize_int8 = false;
};

/// Compiled packed-batch executor over a trained TokenClassifier. Like
/// infer::Engine the float weights are borrowed (pinned via shared tensor
/// storage), but the engine also *derives* state at construction — the
/// zero-padded classifier head and, in int8 mode, the quantized codes — so
/// a PackedEngine must be rebuilt after any weight update (the extractor
/// rebuilds per training epoch). Stateless after construction: all methods
/// are const and safe to call concurrently, each call owns its scratch.
class PackedEngine {
 public:
  PackedEngine(const nn::TokenClassifier& model, PackedEngineOptions options);

  /// Per-token argmax labels for every member of `chunk`, written to
  /// out[chunk.sequence[s]] (slots for other chunks are untouched, so
  /// disjoint chunks can predict into one vector concurrently).
  void PredictChunk(const PackedChunk& chunk,
                    std::vector<std::vector<int32_t>>& out) const;

  /// Packs `sequences` (PackByLength) and predicts every chunk. Entry i of
  /// the result holds per-token labels for sequences[i]; empty sequences
  /// yield empty label vectors.
  std::vector<std::vector<int32_t>> PredictBatch(
      const std::vector<const std::vector<int32_t>*>& sequences) const;

  /// Raw packed logits for one chunk: [chunk.tokens(), logit_cols()]
  /// row-major, alive while the returned storage is held. Columns past
  /// num_labels() are zero padding (the head is padded to a SIMD-friendly
  /// width); argmax must scan only the first num_labels() columns.
  struct ChunkLogits {
    std::shared_ptr<std::vector<float>> storage;
    const float* data = nullptr;
    int64_t cols = 0;
  };
  ChunkLogits ForwardChunk(const PackedChunk& chunk) const;

  int64_t chunk_tokens() const { return options_.chunk_tokens; }
  bool quantized() const { return options_.quantize_int8; }
  int32_t num_labels() const { return num_labels_; }
  int64_t logit_cols() const { return head_cols_; }
  int64_t max_seq_len() const { return config_.max_seq_len; }

 private:
  struct LayerWeights {
    const float* ln1_gamma = nullptr;
    const float* ln1_beta = nullptr;
    const float* qw = nullptr;
    const float* qb = nullptr;
    const float* kw = nullptr;
    const float* kb = nullptr;
    const float* vw = nullptr;
    const float* vb = nullptr;
    const float* ow = nullptr;
    const float* ob = nullptr;
    const float* ln2_gamma = nullptr;
    const float* ln2_beta = nullptr;
    const float* f1w = nullptr;
    const float* f1b = nullptr;
    const float* f2w = nullptr;
    const float* f2b = nullptr;
  };
  struct QuantizedLayer {
    tensor::QuantizedLinear q, k, v, o, f1, f2;
  };

  nn::TransformerConfig config_;
  PackedEngineOptions options_;
  int32_t num_labels_ = 0;
  int64_t head_cols_ = 0;

  /// Shared-storage copies keeping every borrowed weight pointer alive.
  std::vector<tensor::Tensor> pins_;
  const float* token_embedding_ = nullptr;
  const float* position_embedding_ = nullptr;
  std::vector<LayerWeights> layers_;
  const float* final_gamma_ = nullptr;
  const float* final_beta_ = nullptr;
  /// Owned zero-padded head ([d_model, head_cols_] / [head_cols_]); used in
  /// both float and int8 modes so the logit layout never depends on the
  /// quantization knob.
  std::vector<float> head_weight_;
  std::vector<float> head_bias_;
  std::vector<QuantizedLayer> quantized_;

  obs::Counter* chunks_ = nullptr;
  obs::Counter* packed_tokens_ = nullptr;
  obs::Gauge* tokens_per_sec_ = nullptr;
  obs::Histogram* batch_fill_ = nullptr;
  obs::Histogram* occupancy_ = nullptr;
};

}  // namespace goalex::infer

#endif  // GOALEX_INFER_PACKED_H_
