#include "infer/packed.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "nn/linear.h"
#include "tensor/forward.h"
#include "tensor/packed.h"
#include "tensor/scratch.h"

namespace goalex::infer {
namespace {

constexpr float kLayerNormEps = 1e-5f;

int64_t RoundUp8(int64_t n) { return (n + 7) / 8 * 8; }

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::vector<PackedChunk> PackByLength(
    const std::vector<const std::vector<int32_t>*>& sequences,
    int64_t max_seq_len, int64_t chunk_tokens) {
  GOALEX_CHECK_GT(max_seq_len, 0);
  GOALEX_CHECK_GT(chunk_tokens, 0);
  // (length, caller index) for every non-empty sequence, stable-sorted by
  // length: equal lengths keep submission order, so packing is a pure
  // function of the input.
  std::vector<std::pair<int64_t, size_t>> order;
  order.reserve(sequences.size());
  for (size_t i = 0; i < sequences.size(); ++i) {
    GOALEX_CHECK(sequences[i] != nullptr);
    const int64_t len = std::min<int64_t>(
        static_cast<int64_t>(sequences[i]->size()), max_seq_len);
    if (len > 0) order.emplace_back(len, i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const std::pair<int64_t, size_t>& a,
                      const std::pair<int64_t, size_t>& b) {
                     return a.first < b.first;
                   });
  std::vector<PackedChunk> chunks;
  PackedChunk current;
  current.offsets.push_back(0);
  auto flush = [&chunks, &current]() {
    if (current.size() == 0) return;
    chunks.push_back(std::move(current));
    current = PackedChunk();
    current.offsets.push_back(0);
  };
  for (const auto& [len, index] : order) {
    // A sequence longer than the capacity still has to run somewhere; it
    // gets an oversize chunk of its own (flushed by the next iteration).
    if (current.tokens() + len > chunk_tokens && current.size() > 0) flush();
    const std::vector<int32_t>& ids = *sequences[index];
    current.ids.insert(current.ids.end(), ids.begin(), ids.begin() + len);
    current.offsets.push_back(current.tokens());
    current.sequence.push_back(index);
  }
  flush();
  return chunks;
}

PackedEngine::PackedEngine(const nn::TokenClassifier& model,
                           PackedEngineOptions options)
    : config_(model.encoder().config()),
      options_(options),
      num_labels_(model.num_labels()) {
  GOALEX_CHECK_GT(options_.chunk_tokens, 0);
  GOALEX_CHECK_GT(num_labels_, 0);
  const nn::TransformerEncoder& encoder = model.encoder();
  auto pin = [this](const tensor::Var& var) -> const float* {
    pins_.push_back(var->value());
    return pins_.back().data();
  };
  token_embedding_ = pin(encoder.token_embedding());
  position_embedding_ = pin(encoder.position_embedding());
  for (const auto& layer : encoder.layers()) {
    LayerWeights lw;
    lw.ln1_gamma = pin(layer->ln1_gamma());
    lw.ln1_beta = pin(layer->ln1_beta());
    lw.qw = pin(layer->q_proj().weight());
    lw.qb = pin(layer->q_proj().bias());
    lw.kw = pin(layer->k_proj().weight());
    lw.kb = pin(layer->k_proj().bias());
    lw.vw = pin(layer->v_proj().weight());
    lw.vb = pin(layer->v_proj().bias());
    lw.ow = pin(layer->o_proj().weight());
    lw.ob = pin(layer->o_proj().bias());
    lw.ln2_gamma = pin(layer->ln2_gamma());
    lw.ln2_beta = pin(layer->ln2_beta());
    lw.f1w = pin(layer->ffn_in().weight());
    lw.f1b = pin(layer->ffn_in().bias());
    lw.f2w = pin(layer->ffn_out().weight());
    lw.f2b = pin(layer->ffn_out().bias());
    layers_.push_back(lw);
  }
  final_gamma_ = pin(encoder.final_gamma());
  final_beta_ = pin(encoder.final_beta());

  // The head is copied rather than borrowed: its num_labels columns are
  // zero-padded to a multiple of 8 so logits rows stay SIMD-width and the
  // one odd-shaped GEMM in the network hits the vector path. Padding
  // columns only append outputs — the real columns' chains are untouched,
  // so padded-head logits are bit-identical in [0, num_labels). Both modes
  // use this same padded float head (and the same stride), keeping int8's
  // logit layout equal to float's.
  const int64_t d = config_.d_model;
  head_cols_ = RoundUp8(num_labels_);
  const float* hw = model.head().weight()->value().data();
  const float* hb = model.head().bias()->value().data();
  head_weight_.assign(d * head_cols_, 0.0f);
  for (int64_t l = 0; l < d; ++l) {
    for (int64_t j = 0; j < num_labels_; ++j) {
      head_weight_[l * head_cols_ + j] = hw[l * num_labels_ + j];
    }
  }
  head_bias_.assign(head_cols_, 0.0f);
  std::copy(hb, hb + num_labels_, head_bias_.begin());

  if (options_.quantize_int8) {
    const int64_t ffn = config_.ffn_dim;
    for (const LayerWeights& lw : layers_) {
      QuantizedLayer ql;
      ql.q = tensor::QuantizeLinear(lw.qw, lw.qb, d, d);
      ql.k = tensor::QuantizeLinear(lw.kw, lw.kb, d, d);
      ql.v = tensor::QuantizeLinear(lw.vw, lw.vb, d, d);
      ql.o = tensor::QuantizeLinear(lw.ow, lw.ob, d, d);
      ql.f1 = tensor::QuantizeLinear(lw.f1w, lw.f1b, d, ffn);
      ql.f2 = tensor::QuantizeLinear(lw.f2w, lw.f2b, ffn, d);
      quantized_.push_back(std::move(ql));
    }
  }

  if (obs::Active()) {
    auto& registry = obs::MetricsRegistry::Default();
    registry.GetCounter("infer.packed.engines")->Increment();
    chunks_ = registry.GetCounter("infer.packed.chunks");
    packed_tokens_ = registry.GetCounter("infer.packed.tokens");
    tokens_per_sec_ = registry.GetGauge("infer.packed.tokens_per_sec");
    // Fill = packed tokens / chunk capacity (can exceed 1 only for an
    // oversize singleton); occupancy = sequences per chunk.
    static const std::vector<double> kFillBounds = {0.1, 0.25, 0.5, 0.75,
                                                    0.9, 0.95, 1.0};
    batch_fill_ = registry.GetHistogram("infer.packed.batch_fill",
                                        kFillBounds);
    occupancy_ = registry.GetHistogram("infer.packed.bucket_occupancy",
                                       obs::DefaultSizeBounds());
  }
}

PackedEngine::ChunkLogits PackedEngine::ForwardChunk(
    const PackedChunk& chunk) const {
  ChunkLogits result;
  result.cols = head_cols_;
  const int64_t total = chunk.tokens();
  const int64_t nseq = chunk.size();
  if (total == 0) return result;
  GOALEX_CHECK_EQ(static_cast<int64_t>(chunk.offsets.size()), nseq + 1);
  const double start = NowSeconds();

  const int64_t d = config_.d_model;
  const int64_t ffn = config_.ffn_dim;
  const int64_t dh = d / config_.heads;
  int64_t max_t = 0;
  for (int64_t s = 0; s < nseq; ++s) {
    const int64_t t = chunk.offsets[s + 1] - chunk.offsets[s];
    GOALEX_CHECK_GT(t, 0);
    GOALEX_CHECK_LE(t, static_cast<int64_t>(config_.max_seq_len));
    max_t = std::max(max_t, t);
  }

  // One storage block for all packed activations + attention scratch,
  // drawn through the thread's scratch allocator: inside an exec node
  // marked uses_scratch this is a pooled lease counted against
  // exec.scratch.peak_bytes, elsewhere a plain zeroed allocation.
  size_t off = 0;
  auto take = [&off](int64_t n) {
    size_t r = off;
    off += static_cast<size_t>(n);
    return r;
  };
  const size_t o_x = take(total * d);
  const size_t o_h = take(total * d);
  const size_t o_q = take(total * d);
  const size_t o_k = take(total * d);
  const size_t o_v = take(total * d);
  const size_t o_attn = take(total * d);
  const size_t o_x1 = take(total * d);
  const size_t o_f1 = take(total * ffn);
  const size_t o_logits = take(total * head_cols_);
  const size_t o_kat = take(dh * max_t);
  const size_t o_scores = take(tensor::kPackedAttentionRowBlock * max_t);
  result.storage = tensor::AllocateTensorStorage(off);
  float* base = result.storage->data();
  float* x = base + o_x;
  float* h = base + o_h;
  float* q = base + o_q;
  float* k = base + o_k;
  float* v = base + o_v;
  float* attn = base + o_attn;
  float* x1 = base + o_x1;
  float* f1 = base + o_f1;
  float* logits = base + o_logits;
  float* kat = base + o_kat;
  float* scores = base + o_scores;

  // Embeddings: the position ramp restarts at each sequence boundary.
  for (int64_t s = 0; s < nseq; ++s) {
    const int64_t seq_base = chunk.offsets[s];
    const int64_t t = chunk.offsets[s + 1] - seq_base;
    tensor::EmbedSumForward(token_embedding_, config_.vocab_size,
                            position_embedding_, chunk.ids.data() + seq_base,
                            t, d, x + seq_base * d);
  }

  // Pre-LN encoder layers over the packed token axis. Only attention sees
  // the offsets table; everything else is one dense GEMM per op with the
  // residual adds and GELU fused into the producing linear's stores.
  for (size_t li = 0; li < layers_.size(); ++li) {
    const LayerWeights& lw = layers_[li];
    tensor::LayerNormPackedForward(x, lw.ln1_gamma, lw.ln1_beta, h, total, d,
                                   kLayerNormEps);
    if (options_.quantize_int8) {
      const QuantizedLayer& ql = quantized_[li];
      tensor::QuantizedQkvForward(h, ql.q, ql.k, ql.v, q, k, v, total);
      tensor::AttentionPackedForward(q, k, v, attn, chunk.offsets.data(),
                                     nseq, d, config_.heads, kat, scores);
      tensor::QuantizedLinearForward(attn, ql.o, x1, total,
                                     tensor::LinearEpilogue::kResidual, x);
      tensor::LayerNormPackedForward(x1, lw.ln2_gamma, lw.ln2_beta, h, total,
                                     d, kLayerNormEps);
      tensor::QuantizedLinearForward(h, ql.f1, f1, total,
                                     tensor::LinearEpilogue::kGelu, nullptr);
      tensor::QuantizedLinearForward(f1, ql.f2, x, total,
                                     tensor::LinearEpilogue::kResidual, x1);
    } else {
      tensor::LinearForward(h, lw.qw, lw.qb, q, total, d, d);
      tensor::LinearForward(h, lw.kw, lw.kb, k, total, d, d);
      tensor::LinearForward(h, lw.vw, lw.vb, v, total, d, d);
      tensor::AttentionPackedForward(q, k, v, attn, chunk.offsets.data(),
                                     nseq, d, config_.heads, kat, scores);
      tensor::LinearResidualForward(attn, lw.ow, lw.ob, /*residual=*/x, x1,
                                    total, d, d);
      tensor::LayerNormPackedForward(x1, lw.ln2_gamma, lw.ln2_beta, h, total,
                                     d, kLayerNormEps);
      tensor::LinearGeluForward(h, lw.f1w, lw.f1b, f1, total, d, ffn);
      tensor::LinearResidualForward(f1, lw.f2w, lw.f2b, /*residual=*/x1, x,
                                    total, ffn, d);
    }
  }
  tensor::LayerNormPackedForward(x, final_gamma_, final_beta_, h, total, d,
                                 kLayerNormEps);
  tensor::LinearForward(h, head_weight_.data(), head_bias_.data(), logits,
                        total, d, head_cols_);
  result.data = logits;

  if (chunks_ != nullptr) {
    chunks_->Increment();
    packed_tokens_->Increment(static_cast<uint64_t>(total));
    const double elapsed = NowSeconds() - start;
    if (elapsed > 0.0) {
      tokens_per_sec_->Set(static_cast<double>(total) / elapsed);
    }
    batch_fill_->Observe(static_cast<double>(total) /
                         static_cast<double>(options_.chunk_tokens));
    occupancy_->Observe(static_cast<double>(nseq));
  }
  return result;
}

void PackedEngine::PredictChunk(const PackedChunk& chunk,
                                std::vector<std::vector<int32_t>>& out) const {
  const ChunkLogits logits = ForwardChunk(chunk);
  for (int64_t s = 0; s < chunk.size(); ++s) {
    const int64_t seq_base = chunk.offsets[s];
    const int64_t t = chunk.offsets[s + 1] - seq_base;
    std::vector<int32_t>& labels = out[chunk.sequence[s]];
    labels.resize(t);
    for (int64_t i = 0; i < t; ++i) {
      // Scan only the real columns; the padded tail is zeros.
      labels[i] = tensor::ArgmaxRow(
          logits.data + (seq_base + i) * logits.cols, num_labels_);
    }
  }
}

std::vector<std::vector<int32_t>> PackedEngine::PredictBatch(
    const std::vector<const std::vector<int32_t>*>& sequences) const {
  std::vector<std::vector<int32_t>> out(sequences.size());
  for (const PackedChunk& chunk : PackByLength(
           sequences, config_.max_seq_len, options_.chunk_tokens)) {
    PredictChunk(chunk, out);
  }
  return out;
}

}  // namespace goalex::infer
