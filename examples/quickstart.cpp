// Quickstart: train the weakly supervised detail extractor on a handful of
// annotated sustainability objectives and extract structured details from
// new ones — the full development + production workflow of Figure 2 in a
// single file.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/extractor.h"
#include "data/generator.h"
#include "data/schema.h"
#include "eval/table.h"

int main() {
  using goalex::core::DetailExtractor;
  using goalex::core::ExtractorConfig;
  using goalex::data::Annotation;
  using goalex::data::Objective;

  // --- Development phase -------------------------------------------------
  // Training data: objectives with coarse, objective-level annotations.
  // No token-level labels anywhere — Algorithm 1 derives them.
  std::vector<Objective> training;
  {
    // A few hand-written instances (including the paper's Figure 3
    // example) plus synthetic ones for volume.
    Objective o;
    o.id = "fig3";
    o.text =
        "We co-founded The Climate Pledge, a commitment to reach net-zero "
        "carbon by 2040.";
    o.annotations = {{"Action", "reach"},
                     {"Amount", "net-zero"},
                     {"Qualifier", "carbon"},
                     {"Deadline", "2040"}};
    training.push_back(o);

    Objective o2;
    o2.id = "t1";
    o2.text = "Restore 100% of our global water use by 2025.";
    o2.annotations = {{"Action", "Restore"},
                      {"Amount", "100%"},
                      {"Qualifier", "global water use"},
                      {"Deadline", "2025"}};
    training.push_back(o2);

    goalex::data::SustainabilityGoalsConfig corpus_config;
    corpus_config.objective_count = 600;
    for (Objective& synthetic :
         goalex::data::GenerateSustainabilityGoals(corpus_config)) {
      training.push_back(std::move(synthetic));
    }
  }

  ExtractorConfig config;
  config.kinds = goalex::data::SustainabilityGoalKinds();
  // Defaults follow the paper: RoBERTa-style preset, 10 epochs, nominal
  // learning rate 5e-5, batch size 16, Adam.
  DetailExtractor extractor(config);

  std::printf("training on %zu weakly annotated objectives...\n",
              training.size());
  goalex::Status status =
      extractor.Train(training, [](const goalex::core::EpochStats& stats) {
        std::printf("  epoch %2d  loss %.4f  (%.1fs)\n", stats.epoch,
                    stats.mean_train_loss, stats.seconds);
      });
  if (!status.ok()) {
    std::printf("training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("weak labeling matched %.1f%% of annotations\n\n",
              100.0 * extractor.last_train_stats().MatchRate());

  // --- Production phase --------------------------------------------------
  const char* new_objectives[] = {
      "Reduce energy consumption by 20% by 2025 (baseline 2017).",
      "We are committed to empowering 100 million smallholder farmers.",
      "Achieve zero waste to landfill for our global data center "
      "operations no later than 2030.",
  };

  goalex::eval::TextTable table({"Objective", "Action", "Amount",
                                 "Qualifier", "Baseline", "Deadline"});
  for (const char* text : new_objectives) {
    Objective objective;
    objective.text = text;
    goalex::data::DetailRecord record = extractor.Extract(objective);
    table.AddRow({text, record.FieldOrEmpty("Action"),
                  record.FieldOrEmpty("Amount"),
                  record.FieldOrEmpty("Qualifier"),
                  record.FieldOrEmpty("Baseline"),
                  record.FieldOrEmpty("Deadline")});
  }
  std::printf("%s", table.Render(44).c_str());
  return 0;
}
