// Scenario 2 of the paper's deployment section: analyze one sustainability
// report end to end. GoalSpotter classifies every text block, the detail
// extractor structures the detected objectives, and the results land in a
// queryable database (and a CSV export).
//
// Run: ./build/examples/report_analysis
#include <algorithm>
#include <cstdio>

#include "core/database.h"
#include "core/extractor.h"
#include "data/generator.h"
#include "data/report.h"
#include "eval/table.h"
#include "goalspotter/detector.h"
#include "goalspotter/pipeline.h"

int main() {
  using goalex::data::Objective;

  // Train the two models of the deployed system on the synthetic
  // Sustainability Goals corpus.
  goalex::data::SustainabilityGoalsConfig corpus_config;
  std::vector<Objective> corpus =
      goalex::data::GenerateSustainabilityGoals(corpus_config);

  goalex::core::ExtractorConfig extractor_config;
  extractor_config.kinds = goalex::data::SustainabilityGoalKinds();
  goalex::core::DetailExtractor extractor(extractor_config);
  std::printf("training detail extractor on %zu objectives...\n",
              corpus.size());
  goalex::Status status = extractor.Train(corpus);
  if (!status.ok()) {
    std::printf("training failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::vector<goalex::goalspotter::LabeledBlock> blocks;
  for (const Objective& o : corpus) {
    blocks.push_back({o.text, true});
  }
  goalex::Rng noise_rng(11);
  for (size_t i = 0; i < corpus.size(); ++i) {
    blocks.push_back({goalex::data::GenerateNoiseSentence(noise_rng), false});
  }
  goalex::goalspotter::ObjectiveDetector detector;
  detector.Train(blocks, goalex::goalspotter::DetectorOptions());

  // Analyze one dense report.
  goalex::data::Report report = goalex::data::GenerateSingleReport(
      "ExampleCo", /*page_count=*/60, /*objective_count=*/10, /*seed=*/7);
  goalex::goalspotter::GoalSpotter pipeline(&detector, &extractor);
  goalex::core::ObjectiveDatabase database;
  goalex::goalspotter::PipelineStats stats =
      pipeline.ProcessReport(report, &database);

  std::printf("\nreport %s: %lld pages, %lld blocks, %lld objectives "
              "detected\n\n",
              report.document.c_str(), static_cast<long long>(stats.pages),
              static_cast<long long>(stats.blocks),
              static_cast<long long>(stats.detected_objectives));

  goalex::eval::TextTable table(
      {"Page", "Objective", "Action", "Amount", "Deadline"});
  std::vector<goalex::core::DbRow> rows = database.ByCompany("ExampleCo");
  std::sort(rows.begin(), rows.end(),
            [](const goalex::core::DbRow& a, const goalex::core::DbRow& b) {
              return a.page < b.page;
            });
  for (const goalex::core::DbRow& row : rows) {
    table.AddRow({std::to_string(row.page), row.record.objective_text,
                  row.record.FieldOrEmpty("Action"),
                  row.record.FieldOrEmpty("Amount"),
                  row.record.FieldOrEmpty("Deadline")});
  }
  std::printf("%s\n", table.Render(48).c_str());

  // Structured queries the paper motivates: commitments with deadlines can
  // be monitored over time.
  std::printf("objectives with a deadline (monitorable commitments): %zu "
              "of %zu\n",
              database.WithField("Deadline").size(), database.size());
  std::printf("\nCSV export preview:\n%s",
              database.ExportCsv({"Action", "Amount", "Deadline"})
                  .substr(0, 400)
                  .c_str());
  std::printf("...\n");
  return 0;
}
