// Demonstrates the observability layer (src/obs): trains a small detail
// extractor, runs batched extraction with instrumentation enabled, and
// prints the same metrics snapshot in all three export formats — the
// human-readable summary, JSON, and Prometheus text exposition.
//
// Build & run:   cmake --build build && ./build/examples/metrics_demo
#include <cstdio>

#include "common/check.h"
#include "core/extractor.h"
#include "data/generator.h"
#include "data/schema.h"
#include "obs/export.h"
#include "obs/metrics.h"

int main() {
  using namespace goalex;

  std::printf("GoalEx observability demo\n");
  std::printf("=========================\n\n");

  // A small training corpus and a fresh evaluation batch.
  data::SustainabilityGoalsConfig corpus_config;
  corpus_config.objective_count = 300;
  std::vector<data::Objective> train =
      data::GenerateSustainabilityGoals(corpus_config);
  data::SustainabilityGoalsConfig eval_config;
  eval_config.objective_count = 200;
  eval_config.seed += 4242;
  std::vector<data::Objective> batch =
      data::GenerateSustainabilityGoals(eval_config);

  core::ExtractorConfig config;
  config.kinds = data::SustainabilityGoalKinds();
  config.epochs = 3;
  config.enable_metrics = true;  // The default; spelled out for the demo.

  core::DetailExtractor extractor(config);
  std::printf("training on %zu objectives (metrics record per-stage "
              "development timings too)...\n",
              train.size());
  GOALEX_CHECK_OK(extractor.Train(train));

  std::printf("extracting %zu objectives...\n\n", batch.size());
  std::vector<data::DetailRecord> records = extractor.ExtractAll(batch);
  GOALEX_CHECK_EQ(records.size(), batch.size());

  obs::RegistrySnapshot snapshot =
      obs::MetricsRegistry::Default().Snapshot();

  std::printf("--- summary export ---\n%s\n",
              obs::ToSummary(snapshot).c_str());
  std::printf("--- JSON export ---\n%s\n\n", obs::ToJson(snapshot).c_str());
  std::printf("--- Prometheus export ---\n%s",
              obs::ToPrometheus(snapshot).c_str());

  // The runtime kill switch: with metrics disabled nothing is recorded.
  obs::SetEnabled(false);
  obs::MetricsRegistry::Default().Reset();
  extractor.ExtractAll(batch);
  obs::RegistrySnapshot quiet = obs::MetricsRegistry::Default().Snapshot();
  uint64_t recorded = 0;
  for (const obs::CounterSample& c : quiet.counters) recorded += c.value;
  std::printf("\nafter obs::SetEnabled(false) + Reset(): counter total "
              "across %zu metrics = %llu (nothing recorded)\n",
              quiet.counters.size(),
              static_cast<unsigned long long>(recorded));
  return 0;
}
