// Demonstrates Algorithm 1 (WeakSupervisionTokenLabeling) in isolation:
// converts the paper's Figure 3 objective-level annotations into the exact
// token-level IOB labels of Table 3, then shows the exact-matching
// limitation and the fuzzy-matching extension on a divergent annotation.
//
// Run: ./build/examples/weak_labeling_demo
#include <cstdio>

#include "data/schema.h"
#include "eval/table.h"
#include "labels/iob.h"
#include "weaksup/weak_labeler.h"

namespace {

void PrintLabeling(const goalex::labels::LabelCatalog& catalog,
                   const goalex::weaksup::WeakLabeling& labeling) {
  goalex::eval::TextTable table({"Token", "Label"});
  for (size_t i = 0; i < labeling.tokens.size(); ++i) {
    table.AddRow({labeling.tokens[i].text,
                  catalog.LabelName(labeling.label_ids[i])});
  }
  std::printf("%s", table.Render().c_str());
  if (!labeling.unmatched_kinds.empty()) {
    std::printf("unmatched annotation kinds:");
    for (const std::string& kind : labeling.unmatched_kinds) {
      std::printf(" %s", kind.c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  goalex::labels::LabelCatalog catalog(
      goalex::data::SustainabilityGoalKinds());

  // The paper's Figure 3 training instance.
  goalex::data::Objective objective;
  objective.text =
      "We co-founded The Climate Pledge, a commitment to reach net-zero "
      "carbon by 2040.";
  objective.annotations = {{"Action", "reach"},
                           {"Amount", "net-zero"},
                           {"Qualifier", "carbon"},
                           {"Baseline", ""},
                           {"Deadline", "2040"}};

  std::printf("=== Algorithm 1 on the paper's Figure 3 example "
              "(reproduces Table 3) ===\n");
  goalex::weaksup::WeakLabeler exact_labeler(&catalog);
  PrintLabeling(catalog, exact_labeler.Label(objective));

  // A divergent annotation: the expert wrote the action lowercased and the
  // amount without the hyphen. Exact matching (the deployed configuration)
  // cannot locate them; the fuzzy extension can.
  goalex::data::Objective divergent;
  divergent.text = "Achieve Net-Zero emissions across our fleet by 2035.";
  divergent.annotations = {{"Action", "achieve"},
                           {"Amount", "net zero"},
                           {"Deadline", "2035"}};

  std::printf("=== Exact matching on a lexically divergent annotation "
              "(Section 5.3 limitation) ===\n");
  PrintLabeling(catalog, exact_labeler.Label(divergent));

  std::printf("=== Fuzzy matching (the paper's future-work extension) "
              "===\n");
  goalex::weaksup::WeakLabelerOptions fuzzy_options;
  fuzzy_options.exact_match = false;
  goalex::weaksup::WeakLabeler fuzzy_labeler(&catalog, fuzzy_options);
  PrintLabeling(catalog, fuzzy_labeler.Label(divergent));
  return 0;
}
