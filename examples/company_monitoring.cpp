// Scenario 1 of the paper's deployment section: multi-company monitoring.
// Processes report fleets for several companies, stores the structured
// details in the objective database, and runs the cross-company analyses
// the paper motivates: objective counts, specificity comparison (who quotes
// amounts and deadlines), and commitment tracking queries.
//
// Run: ./build/examples/company_monitoring
#include <cstdio>

#include "common/string_util.h"
#include "core/database.h"
#include "core/extractor.h"
#include "data/generator.h"
#include "data/report.h"
#include "eval/table.h"
#include "goalspotter/detector.h"
#include "goalspotter/pipeline.h"

int main() {
  using goalex::data::Objective;

  // Train the deployed system.
  goalex::data::SustainabilityGoalsConfig corpus_config;
  std::vector<Objective> corpus =
      goalex::data::GenerateSustainabilityGoals(corpus_config);
  goalex::core::ExtractorConfig extractor_config;
  extractor_config.kinds = goalex::data::SustainabilityGoalKinds();
  goalex::core::DetailExtractor extractor(extractor_config);
  std::printf("training deployed system...\n");
  goalex::Status status = extractor.Train(corpus);
  if (!status.ok()) {
    std::printf("training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::vector<goalex::goalspotter::LabeledBlock> blocks;
  for (const Objective& o : corpus) blocks.push_back({o.text, true});
  goalex::Rng noise_rng(5);
  for (size_t i = 0; i < corpus.size(); ++i) {
    blocks.push_back({goalex::data::GenerateNoiseSentence(noise_rng), false});
  }
  goalex::goalspotter::ObjectiveDetector detector;
  detector.Train(blocks, goalex::goalspotter::DetectorOptions());

  // Monitor four companies of different sizes.
  goalex::goalspotter::GoalSpotter pipeline(&detector, &extractor);
  goalex::core::ObjectiveDatabase database;
  const goalex::data::CompanyProfile companies[] = {
      {"AlphaCorp", 6, 300, 45},
      {"BetaIndustries", 4, 180, 12},
      {"GammaFoods", 8, 420, 60},
      {"DeltaLogistics", 3, 150, 20},
  };
  uint64_t seed = 100;
  for (const goalex::data::CompanyProfile& profile : companies) {
    std::vector<goalex::data::Report> reports =
        goalex::data::GenerateCompanyReports(profile, seed++);
    goalex::goalspotter::PipelineStats stats =
        pipeline.ProcessReports(reports, &database);
    std::printf("  %s: %lld documents, %lld pages, %lld objectives\n",
                profile.name.c_str(),
                static_cast<long long>(stats.documents),
                static_cast<long long>(stats.pages),
                static_cast<long long>(stats.detected_objectives));
  }

  // Cross-company specificity comparison (who is concrete about targets?).
  std::printf("\nSpecificity comparison:\n");
  goalex::eval::TextTable table({"Company", "Objectives",
                                 "% with Amount", "% with Deadline",
                                 "% with Baseline"});
  auto counts = database.CountPerCompany();
  auto amount = database.FieldCoverageByCompany("Amount");
  auto deadline = database.FieldCoverageByCompany("Deadline");
  auto baseline = database.FieldCoverageByCompany("Baseline");
  for (const goalex::data::CompanyProfile& profile : companies) {
    const std::string& name = profile.name;
    table.AddRow({name, std::to_string(counts[name]),
                  goalex::FormatDouble(100.0 * amount[name], 0),
                  goalex::FormatDouble(100.0 * deadline[name], 0),
                  goalex::FormatDouble(100.0 * baseline[name], 0)});
  }
  std::printf("%s\n", table.Render().c_str());

  // Commitment tracking: upcoming deadlines to re-check, served straight
  // from the database's normalized deadline-year index.
  std::printf("Commitments due by 2030 (to fact-check against future "
              "reports):\n");
  int shown = 0;
  for (const goalex::core::DbRow& row :
       database.DeadlineYearBetween(2000, 2030)) {
    if (shown >= 5) break;
    std::printf("  [%s, due %s] %.70s...\n", row.company.c_str(),
                row.record.FieldOrEmpty("Deadline").c_str(),
                row.record.objective_text.c_str());
    ++shown;
  }
  return 0;
}
