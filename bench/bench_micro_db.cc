// Microbenchmark of the sharded ObjectiveDatabase serving store: bulk
// insert throughput at 1/2/4/8 writer threads, mixed concurrent
// insert+query throughput, indexed queries vs. the seed-era full-scan path
// on a >=100k-row synthetic database, and the storage engine's cold-start
// story: loading an mmap'ed v2 segment snapshot vs. fully deserializing
// the legacy v1 single-file snapshot (1M rows; --smoke drops to 120k and
// relaxes the speedup gate so CI can run it on every push). Indexed and
// QueryText results are cross-checked against the scans before any timing
// is reported, and one machine-readable JSON row per configuration lets CI
// track the numbers.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "bench/harness.h"
#include "common/check.h"
#include "common/string_util.h"
#include "core/database.h"
#include "eval/table.h"
#include "eval/timer.h"
#include "runtime/thread_pool.h"
#include "storage/segment.h"
#include "values/value_normalizer.h"

namespace goalex::bench {
namespace {

constexpr size_t kRows = 120000;
constexpr int kCompanies = 40;

struct SyntheticRow {
  data::DetailRecord record;
  std::string company;
  int page = 0;
};

/// Deterministic synthetic fleet: ~40 companies, half the rows carry a
/// Deadline, a third carry an Amount drawn from a small value pool (so
/// WhereFieldEquals has selective hits).
std::vector<SyntheticRow> MakeRows(size_t count) {
  std::mt19937_64 rng(20260806);
  std::vector<SyntheticRow> rows;
  rows.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    SyntheticRow row;
    row.company = "Company" + std::to_string(rng() % kCompanies);
    row.page = static_cast<int>(rng() % 200);
    row.record.objective_id = "obj" + std::to_string(i);
    row.record.objective_text =
        "Reduce scope " + std::to_string(1 + rng() % 3) +
        " emissions across operations #" + std::to_string(i);
    if (rng() % 2 == 0) {
      row.record.fields["Deadline"] =
          "by " + std::to_string(2025 + rng() % 25);
    }
    if (rng() % 3 == 0) {
      row.record.fields["Amount"] = std::to_string(10 * (1 + rng() % 9)) + "%";
    }
    row.record.fields["Action"] = rng() % 4 == 0 ? "eliminate" : "reduce";
    rows.push_back(std::move(row));
  }
  return rows;
}

double InsertAll(core::ObjectiveDatabase* db,
                 const std::vector<SyntheticRow>& rows, int threads) {
  runtime::ThreadPool pool(threads);
  eval::Timer timer;
  pool.ParallelFor(rows.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      db->Insert(rows[i].record, rows[i].company, "report.pdf",
                 rows[i].page);
    }
  });
  return timer.Seconds();
}

/// The seed-era query plan: one linear pass over a full row snapshot,
/// materializing the same row copies the indexed API returns so both plans
/// are timed against an identical output contract.
template <typename Pred>
std::vector<core::DbRow> FullScan(const std::vector<core::DbRow>& snapshot,
                                  Pred pred) {
  std::vector<core::DbRow> hits;
  for (const core::DbRow& row : snapshot) {
    if (pred(row)) hits.push_back(row);
  }
  return hits;
}

void Run(bool smoke) {
  std::printf("Microbenchmark: sharded ObjectiveDatabase serving store%s\n",
              smoke ? " (smoke)" : "");
  std::printf("%zu synthetic rows, %d companies, %d shards\n\n", kRows,
              kCompanies, core::ObjectiveDatabase::kDefaultShards);
  std::vector<SyntheticRow> rows = MakeRows(kRows);

  // --- 1. Bulk insert throughput by writer-thread count. -----------------
  eval::TextTable insert_table({"Writers", "Seconds", "Inserts/s"});
  for (int threads : smoke ? std::vector<int>{1, 4}
                           : std::vector<int>{1, 2, 4, 8}) {
    core::ObjectiveDatabase db;
    double seconds = InsertAll(&db, rows, threads);
    GOALEX_CHECK(db.size() == kRows);
    double per_s = static_cast<double>(kRows) / seconds;
    insert_table.AddRow({std::to_string(threads),
                         FormatDouble(seconds, 3), FormatDouble(per_s, 0)});
    std::printf(
        "{\"bench\":\"micro_db\",\"mode\":\"insert\",\"threads\":%d,"
        "\"rows\":%zu,\"seconds\":%.6f,\"inserts_per_s\":%.0f}\n",
        threads, kRows, seconds, per_s);
  }
  std::printf("\n%s\n", insert_table.Render().c_str());

  // --- 2. Mixed workload: writers insert while readers query. ------------
  {
    core::ObjectiveDatabase db;
    constexpr int kWriterThreads = 2;
    constexpr int kReaderThreads = 2;
    runtime::ThreadPool pool(kWriterThreads + kReaderThreads);
    std::atomic<size_t> next_row{0};
    std::atomic<bool> writers_done{0};
    std::atomic<uint64_t> queries{0};
    eval::Timer timer;
    for (int w = 0; w < kWriterThreads; ++w) {
      pool.Submit([&] {
        for (size_t i = next_row.fetch_add(1); i < kRows;
             i = next_row.fetch_add(1)) {
          db.Insert(rows[i].record, rows[i].company, "report.pdf",
                    rows[i].page);
        }
        writers_done.store(true, std::memory_order_release);
      });
    }
    for (int r = 0; r < kReaderThreads; ++r) {
      pool.Submit([&, r] {
        size_t sink = 0;
        uint64_t local = 0;
        while (!writers_done.load(std::memory_order_acquire)) {
          sink += db.ByCompany("Company" + std::to_string(local % kCompanies))
                      .size();
          sink += db.WhereFieldEquals("Amount", "50%").size();
          sink += db.DeadlineYearBetween(2030, 2035).size();
          if (r == 0) sink += db.CountPerCompany().size();
          local += 4;
        }
        queries.fetch_add(local, std::memory_order_relaxed);
        volatile size_t keep = sink;
        (void)keep;
      });
    }
    pool.Wait();
    double seconds = timer.Seconds();
    GOALEX_CHECK(db.size() == kRows);
    std::printf(
        "mixed workload: %d writers + %d readers: %.3f s, %.0f inserts/s "
        "with %.0f concurrent queries/s\n",
        kWriterThreads, kReaderThreads, seconds,
        static_cast<double>(kRows) / seconds,
        static_cast<double>(queries.load()) / seconds);
    std::printf(
        "{\"bench\":\"micro_db\",\"mode\":\"mixed\",\"writers\":%d,"
        "\"readers\":%d,\"rows\":%zu,\"seconds\":%.6f,"
        "\"inserts_per_s\":%.0f,\"queries_per_s\":%.0f}\n\n",
        kWriterThreads, kReaderThreads, kRows, seconds,
        static_cast<double>(kRows) / seconds,
        static_cast<double>(queries.load()) / seconds);
  }

  // --- 3. Indexed queries vs. the seed-era full scan. --------------------
  core::ObjectiveDatabase db;
  InsertAll(&db, rows, 4);
  std::vector<core::DbRow> snapshot = db.SnapshotRows();

  struct QueryCase {
    const char* name;
    size_t indexed_hits;
    size_t scan_hits;
    double indexed_seconds;
    double scan_seconds;
  };
  constexpr int kReps = 20;
  std::vector<QueryCase> cases;

  {
    QueryCase q{"by_company", 0, 0, 0.0, 0.0};
    eval::Timer indexed;
    for (int rep = 0; rep < kReps; ++rep) {
      q.indexed_hits = db.ByCompany("Company7").size();
    }
    q.indexed_seconds = indexed.Seconds() / kReps;
    eval::Timer scan;
    for (int rep = 0; rep < kReps; ++rep) {
      q.scan_hits = FullScan(snapshot, [](const core::DbRow& row) {
        return row.company == "Company7";
      }).size();
    }
    q.scan_seconds = scan.Seconds() / kReps;
    cases.push_back(q);
  }
  {
    QueryCase q{"where_field_equals", 0, 0, 0.0, 0.0};
    eval::Timer indexed;
    for (int rep = 0; rep < kReps; ++rep) {
      q.indexed_hits = db.WhereFieldEquals("Amount", "50%").size();
    }
    q.indexed_seconds = indexed.Seconds() / kReps;
    eval::Timer scan;
    for (int rep = 0; rep < kReps; ++rep) {
      q.scan_hits = FullScan(snapshot, [](const core::DbRow& row) {
        return row.record.FieldOrEmpty("Amount") == "50%";
      }).size();
    }
    q.scan_seconds = scan.Seconds() / kReps;
    cases.push_back(q);
  }
  {
    QueryCase q{"deadline_year_between", 0, 0, 0.0, 0.0};
    eval::Timer indexed;
    for (int rep = 0; rep < kReps; ++rep) {
      q.indexed_hits = db.DeadlineYearBetween(2030, 2032).size();
    }
    q.indexed_seconds = indexed.Seconds() / kReps;
    eval::Timer scan;
    for (int rep = 0; rep < kReps; ++rep) {
      q.scan_hits = FullScan(snapshot, [](const core::DbRow& row) {
        std::optional<int> year =
            values::NormalizeDeadlineYear(row.record.FieldOrEmpty("Deadline"));
        return year.has_value() && *year >= 2030 && *year <= 2032;
      }).size();
    }
    q.scan_seconds = scan.Seconds() / kReps;
    cases.push_back(q);
  }
  {
    QueryCase q{"field_coverage", 0, 0, 0.0, 0.0};
    eval::Timer indexed;
    for (int rep = 0; rep < kReps; ++rep) {
      q.indexed_hits = db.FieldCoverageByCompany("Deadline").size();
    }
    q.indexed_seconds = indexed.Seconds() / kReps;
    eval::Timer scan;
    for (int rep = 0; rep < kReps; ++rep) {
      // The seed-era implementation: two counting maps over every row.
      std::map<std::string, int64_t> total, with_field;
      for (const core::DbRow& row : snapshot) {
        ++total[row.company];
        if (!row.record.FieldOrEmpty("Deadline").empty()) {
          ++with_field[row.company];
        }
      }
      q.scan_hits = total.size();
    }
    q.scan_seconds = scan.Seconds() / kReps;
    cases.push_back(q);
  }

  eval::TextTable query_table(
      {"Query", "Hits", "Indexed us", "Full-scan us", "Speedup"});
  for (const QueryCase& q : cases) {
    GOALEX_CHECK_MSG(q.indexed_hits == q.scan_hits, q.name);
    double speedup = q.scan_seconds / q.indexed_seconds;
    query_table.AddRow({q.name, std::to_string(q.indexed_hits),
                        FormatDouble(q.indexed_seconds * 1e6, 1),
                        FormatDouble(q.scan_seconds * 1e6, 1),
                        FormatDouble(speedup, 1)});
    std::printf(
        "{\"bench\":\"micro_db\",\"mode\":\"query\",\"query\":\"%s\","
        "\"rows\":%zu,\"hits\":%zu,\"indexed_seconds\":%.9f,"
        "\"scan_seconds\":%.9f,\"speedup\":%.2f}\n",
        q.name, kRows, q.indexed_hits, q.indexed_seconds, q.scan_seconds,
        speedup);
  }
  std::printf("\n%s\n", query_table.Render().c_str());

  // --- 4. Cold start: mmap'ed v2 segments vs legacy full deserialize. ----
  {
    const size_t persist_rows = smoke ? kRows : 1000000;
    std::string legacy_dir = (std::filesystem::temp_directory_path() /
                              "goalex_bench_db_legacy")
                                 .string();
    std::string v2_dir = (std::filesystem::temp_directory_path() /
                          "goalex_bench_db_v2")
                             .string();
    std::filesystem::remove_all(legacy_dir);
    std::filesystem::remove_all(v2_dir);
    {
      // Build and snapshot in a scope so the source store's memory is
      // returned before the cold-start loads are timed.
      std::vector<SyntheticRow> persist =
          persist_rows == kRows ? std::move(rows) : MakeRows(persist_rows);
      core::ObjectiveDatabase source;
      InsertAll(&source, persist, 4);
      GOALEX_CHECK(source.SaveLegacy(legacy_dir).ok());
      GOALEX_CHECK(source.Save(v2_dir).ok());
    }

    double legacy_seconds = 0.0;
    std::map<std::string, int64_t> legacy_counts;
    {
      core::ObjectiveDatabase cold;
      eval::Timer timer;
      GOALEX_CHECK(cold.Load(legacy_dir).ok());
      legacy_seconds = timer.Seconds();
      GOALEX_CHECK(cold.size() == persist_rows);
      legacy_counts = cold.CountPerCompany();
    }
    core::ObjectiveDatabase mapped;
    double mmap_seconds = 0.0;
    {
      eval::Timer timer;
      GOALEX_CHECK(mapped.Load(v2_dir).ok());
      mmap_seconds = timer.Seconds();
    }
    GOALEX_CHECK(mapped.size() == persist_rows);
    GOALEX_CHECK(mapped.CountPerCompany() == legacy_counts);
    double speedup = legacy_seconds / mmap_seconds;
    std::printf(
        "cold start at %zu rows: legacy deserialize %.3f s, mmap %.3f s "
        "(%.1fx)\n",
        persist_rows, legacy_seconds, mmap_seconds, speedup);
    std::printf(
        "{\"bench\":\"micro_db\",\"mode\":\"cold_start\",\"rows\":%zu,"
        "\"legacy_seconds\":%.6f,\"mmap_seconds\":%.6f,\"speedup\":%.2f}\n",
        persist_rows, legacy_seconds, mmap_seconds, speedup);
    // CI gate: the mmap path regressing to within 3x (10x at full scale)
    // of a row-by-row rebuild means the cold-start story is broken.
    double required = smoke ? 3.0 : 10.0;
    GOALEX_CHECK_MSG(speedup >= required,
                     "mmap cold start regressed vs full deserialize");

    // QueryText on the mmap'ed store vs an honest full scan that
    // re-derives each row's term set the way the index does.
    const std::string term = "2031";
    size_t indexed_hits = 0;
    constexpr int kTextReps = 5;
    eval::Timer indexed_timer;
    for (int rep = 0; rep < kTextReps; ++rep) {
      indexed_hits = mapped.QueryText(term, core::TextFilter{}).size();
    }
    double indexed_seconds = indexed_timer.Seconds() / kTextReps;

    std::vector<core::DbRow> snapshot = mapped.SnapshotRows();
    size_t scan_hits = 0;
    eval::Timer scan_timer;
    for (const core::DbRow& row : snapshot) {
      bool hit = false;
      for (const std::string& token :
           storage::TextIndexTerms(row.record.objective_text)) {
        if (token == term) {
          hit = true;
          break;
        }
      }
      if (!hit) {
        for (const auto& [kind, value] : row.record.fields) {
          if (value.empty() || hit) continue;
          for (const std::string& token : storage::TextIndexTerms(value)) {
            if (token == term) {
              hit = true;
              break;
            }
          }
        }
      }
      if (hit) ++scan_hits;
    }
    double scan_seconds = scan_timer.Seconds();
    GOALEX_CHECK_MSG(indexed_hits == scan_hits, "QueryText parity");
    GOALEX_CHECK(indexed_hits > 0);
    double text_speedup = scan_seconds / indexed_seconds;
    std::printf(
        "QueryText(\"%s\"): %zu hits, indexed %.1f us vs scan %.1f ms "
        "(%.0fx)\n",
        term.c_str(), indexed_hits, indexed_seconds * 1e6,
        scan_seconds * 1e3, text_speedup);
    std::printf(
        "{\"bench\":\"micro_db\",\"mode\":\"query_text\",\"rows\":%zu,"
        "\"hits\":%zu,\"indexed_seconds\":%.9f,\"scan_seconds\":%.9f,"
        "\"speedup\":%.2f}\n\n",
        persist_rows, indexed_hits, indexed_seconds, scan_seconds,
        text_speedup);

    std::filesystem::remove_all(legacy_dir);
    std::filesystem::remove_all(v2_dir);
  }
  EmitMetricsSnapshot("db microbenchmark");
}

}  // namespace
}  // namespace goalex::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") smoke = true;
  }
  goalex::bench::Run(smoke);
  return 0;
}
