// Microbenchmark of the sharded ObjectiveDatabase serving store: bulk
// insert throughput at 1/2/4/8 writer threads, mixed concurrent
// insert+query throughput, and indexed queries vs. the seed-era full-scan
// path on a >=100k-row synthetic database. Indexed results are
// cross-checked against the scans before any timing is reported, and one
// machine-readable JSON row per configuration lets CI track the numbers.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/check.h"
#include "common/string_util.h"
#include "core/database.h"
#include "eval/table.h"
#include "eval/timer.h"
#include "runtime/thread_pool.h"
#include "values/value_normalizer.h"

namespace goalex::bench {
namespace {

constexpr size_t kRows = 120000;
constexpr int kCompanies = 40;

struct SyntheticRow {
  data::DetailRecord record;
  std::string company;
  int page = 0;
};

/// Deterministic synthetic fleet: ~40 companies, half the rows carry a
/// Deadline, a third carry an Amount drawn from a small value pool (so
/// WhereFieldEquals has selective hits).
std::vector<SyntheticRow> MakeRows() {
  std::mt19937_64 rng(20260806);
  std::vector<SyntheticRow> rows;
  rows.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    SyntheticRow row;
    row.company = "Company" + std::to_string(rng() % kCompanies);
    row.page = static_cast<int>(rng() % 200);
    row.record.objective_id = "obj" + std::to_string(i);
    row.record.objective_text =
        "Reduce scope " + std::to_string(1 + rng() % 3) +
        " emissions across operations #" + std::to_string(i);
    if (rng() % 2 == 0) {
      row.record.fields["Deadline"] =
          "by " + std::to_string(2025 + rng() % 25);
    }
    if (rng() % 3 == 0) {
      row.record.fields["Amount"] = std::to_string(10 * (1 + rng() % 9)) + "%";
    }
    row.record.fields["Action"] = rng() % 4 == 0 ? "eliminate" : "reduce";
    rows.push_back(std::move(row));
  }
  return rows;
}

double InsertAll(core::ObjectiveDatabase* db,
                 const std::vector<SyntheticRow>& rows, int threads) {
  runtime::ThreadPool pool(threads);
  eval::Timer timer;
  pool.ParallelFor(rows.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      db->Insert(rows[i].record, rows[i].company, "report.pdf",
                 rows[i].page);
    }
  });
  return timer.Seconds();
}

/// The seed-era query plan: one linear pass over a full row snapshot,
/// materializing the same row copies the indexed API returns so both plans
/// are timed against an identical output contract.
template <typename Pred>
std::vector<core::DbRow> FullScan(const std::vector<core::DbRow>& snapshot,
                                  Pred pred) {
  std::vector<core::DbRow> hits;
  for (const core::DbRow& row : snapshot) {
    if (pred(row)) hits.push_back(row);
  }
  return hits;
}

void Run() {
  std::printf("Microbenchmark: sharded ObjectiveDatabase serving store\n");
  std::printf("%zu synthetic rows, %d companies, %d shards\n\n", kRows,
              kCompanies, core::ObjectiveDatabase::kDefaultShards);
  std::vector<SyntheticRow> rows = MakeRows();

  // --- 1. Bulk insert throughput by writer-thread count. -----------------
  eval::TextTable insert_table({"Writers", "Seconds", "Inserts/s"});
  for (int threads : {1, 2, 4, 8}) {
    core::ObjectiveDatabase db;
    double seconds = InsertAll(&db, rows, threads);
    GOALEX_CHECK(db.size() == kRows);
    double per_s = static_cast<double>(kRows) / seconds;
    insert_table.AddRow({std::to_string(threads),
                         FormatDouble(seconds, 3), FormatDouble(per_s, 0)});
    std::printf(
        "{\"bench\":\"micro_db\",\"mode\":\"insert\",\"threads\":%d,"
        "\"rows\":%zu,\"seconds\":%.6f,\"inserts_per_s\":%.0f}\n",
        threads, kRows, seconds, per_s);
  }
  std::printf("\n%s\n", insert_table.Render().c_str());

  // --- 2. Mixed workload: writers insert while readers query. ------------
  {
    core::ObjectiveDatabase db;
    constexpr int kWriterThreads = 2;
    constexpr int kReaderThreads = 2;
    runtime::ThreadPool pool(kWriterThreads + kReaderThreads);
    std::atomic<size_t> next_row{0};
    std::atomic<bool> writers_done{0};
    std::atomic<uint64_t> queries{0};
    eval::Timer timer;
    for (int w = 0; w < kWriterThreads; ++w) {
      pool.Submit([&] {
        for (size_t i = next_row.fetch_add(1); i < kRows;
             i = next_row.fetch_add(1)) {
          db.Insert(rows[i].record, rows[i].company, "report.pdf",
                    rows[i].page);
        }
        writers_done.store(true, std::memory_order_release);
      });
    }
    for (int r = 0; r < kReaderThreads; ++r) {
      pool.Submit([&, r] {
        size_t sink = 0;
        uint64_t local = 0;
        while (!writers_done.load(std::memory_order_acquire)) {
          sink += db.ByCompany("Company" + std::to_string(local % kCompanies))
                      .size();
          sink += db.WhereFieldEquals("Amount", "50%").size();
          sink += db.DeadlineYearBetween(2030, 2035).size();
          if (r == 0) sink += db.CountPerCompany().size();
          local += 4;
        }
        queries.fetch_add(local, std::memory_order_relaxed);
        volatile size_t keep = sink;
        (void)keep;
      });
    }
    pool.Wait();
    double seconds = timer.Seconds();
    GOALEX_CHECK(db.size() == kRows);
    std::printf(
        "mixed workload: %d writers + %d readers: %.3f s, %.0f inserts/s "
        "with %.0f concurrent queries/s\n",
        kWriterThreads, kReaderThreads, seconds,
        static_cast<double>(kRows) / seconds,
        static_cast<double>(queries.load()) / seconds);
    std::printf(
        "{\"bench\":\"micro_db\",\"mode\":\"mixed\",\"writers\":%d,"
        "\"readers\":%d,\"rows\":%zu,\"seconds\":%.6f,"
        "\"inserts_per_s\":%.0f,\"queries_per_s\":%.0f}\n\n",
        kWriterThreads, kReaderThreads, kRows, seconds,
        static_cast<double>(kRows) / seconds,
        static_cast<double>(queries.load()) / seconds);
  }

  // --- 3. Indexed queries vs. the seed-era full scan. --------------------
  core::ObjectiveDatabase db;
  InsertAll(&db, rows, 4);
  std::vector<core::DbRow> snapshot = db.SnapshotRows();

  struct QueryCase {
    const char* name;
    size_t indexed_hits;
    size_t scan_hits;
    double indexed_seconds;
    double scan_seconds;
  };
  constexpr int kReps = 20;
  std::vector<QueryCase> cases;

  {
    QueryCase q{"by_company", 0, 0, 0.0, 0.0};
    eval::Timer indexed;
    for (int rep = 0; rep < kReps; ++rep) {
      q.indexed_hits = db.ByCompany("Company7").size();
    }
    q.indexed_seconds = indexed.Seconds() / kReps;
    eval::Timer scan;
    for (int rep = 0; rep < kReps; ++rep) {
      q.scan_hits = FullScan(snapshot, [](const core::DbRow& row) {
        return row.company == "Company7";
      }).size();
    }
    q.scan_seconds = scan.Seconds() / kReps;
    cases.push_back(q);
  }
  {
    QueryCase q{"where_field_equals", 0, 0, 0.0, 0.0};
    eval::Timer indexed;
    for (int rep = 0; rep < kReps; ++rep) {
      q.indexed_hits = db.WhereFieldEquals("Amount", "50%").size();
    }
    q.indexed_seconds = indexed.Seconds() / kReps;
    eval::Timer scan;
    for (int rep = 0; rep < kReps; ++rep) {
      q.scan_hits = FullScan(snapshot, [](const core::DbRow& row) {
        return row.record.FieldOrEmpty("Amount") == "50%";
      }).size();
    }
    q.scan_seconds = scan.Seconds() / kReps;
    cases.push_back(q);
  }
  {
    QueryCase q{"deadline_year_between", 0, 0, 0.0, 0.0};
    eval::Timer indexed;
    for (int rep = 0; rep < kReps; ++rep) {
      q.indexed_hits = db.DeadlineYearBetween(2030, 2032).size();
    }
    q.indexed_seconds = indexed.Seconds() / kReps;
    eval::Timer scan;
    for (int rep = 0; rep < kReps; ++rep) {
      q.scan_hits = FullScan(snapshot, [](const core::DbRow& row) {
        std::optional<int> year =
            values::NormalizeYear(row.record.FieldOrEmpty("Deadline"));
        return year.has_value() && *year >= 2030 && *year <= 2032;
      }).size();
    }
    q.scan_seconds = scan.Seconds() / kReps;
    cases.push_back(q);
  }
  {
    QueryCase q{"field_coverage", 0, 0, 0.0, 0.0};
    eval::Timer indexed;
    for (int rep = 0; rep < kReps; ++rep) {
      q.indexed_hits = db.FieldCoverageByCompany("Deadline").size();
    }
    q.indexed_seconds = indexed.Seconds() / kReps;
    eval::Timer scan;
    for (int rep = 0; rep < kReps; ++rep) {
      // The seed-era implementation: two counting maps over every row.
      std::map<std::string, int64_t> total, with_field;
      for (const core::DbRow& row : snapshot) {
        ++total[row.company];
        if (!row.record.FieldOrEmpty("Deadline").empty()) {
          ++with_field[row.company];
        }
      }
      q.scan_hits = total.size();
    }
    q.scan_seconds = scan.Seconds() / kReps;
    cases.push_back(q);
  }

  eval::TextTable query_table(
      {"Query", "Hits", "Indexed us", "Full-scan us", "Speedup"});
  for (const QueryCase& q : cases) {
    GOALEX_CHECK_MSG(q.indexed_hits == q.scan_hits, q.name);
    double speedup = q.scan_seconds / q.indexed_seconds;
    query_table.AddRow({q.name, std::to_string(q.indexed_hits),
                        FormatDouble(q.indexed_seconds * 1e6, 1),
                        FormatDouble(q.scan_seconds * 1e6, 1),
                        FormatDouble(speedup, 1)});
    std::printf(
        "{\"bench\":\"micro_db\",\"mode\":\"query\",\"query\":\"%s\","
        "\"rows\":%zu,\"hits\":%zu,\"indexed_seconds\":%.9f,"
        "\"scan_seconds\":%.9f,\"speedup\":%.2f}\n",
        q.name, kRows, q.indexed_hits, q.indexed_seconds, q.scan_seconds,
        speedup);
  }
  std::printf("\n%s\n", query_table.Render().c_str());
  EmitMetricsSnapshot("db microbenchmark");
}

}  // namespace
}  // namespace goalex::bench

int main() {
  goalex::bench::Run();
  return 0;
}
