// Regenerates Table 4: effectiveness (P/R/F1) and efficiency (minutes) of
// Conditional Random Fields, Zero-Shot Prompting, Few-Shot Prompting, and
// GoalSpotter on the NetZeroFacts and Sustainability Goals corpora.
// Results are means over GOALEX_RUNS independent runs (default 3; the
// paper reports 5).
#include <cstdio>

#include "bench/harness.h"
#include "eval/table.h"

namespace goalex::bench {
namespace {

void Run() {
  const int runs = RunCount();
  std::printf("Table 4: system effectiveness and efficiency vs baselines\n");
  std::printf("(mean of %d runs; LLM times are simulated API latency)\n\n",
              runs);

  eval::TextTable table({"Approach", "Dataset", "P", "R", "F", "T (min)"});
  const char* approach_names[] = {"Conditional Random Fields",
                                  "Zero-Shot Prompting",
                                  "Few-Shot Prompting", "GoalSpotter"};

  for (Corpus corpus :
       {Corpus::kNetZeroFacts, Corpus::kSustainabilityGoals}) {
    MeanResult means[4];
    for (int run = 0; run < runs; ++run) {
      data::Split split = MakeSplit(corpus, static_cast<uint64_t>(run));
      means[0].Add(RunCrfBaseline(split, corpus));
      means[1].Add(RunPromptingBaseline(split, corpus, /*few_shot=*/false,
                                        static_cast<uint64_t>(run)));
      means[2].Add(RunPromptingBaseline(split, corpus, /*few_shot=*/true,
                                        static_cast<uint64_t>(run)));
      core::ExtractorConfig config = DefaultExtractorConfig(corpus);
      config.seed += static_cast<uint64_t>(run);
      means[3].Add(RunGoalSpotter(split, corpus, std::move(config)));
    }
    for (int i = 0; i < 4; ++i) {
      std::vector<std::string> cells = means[i].Cells();
      table.AddRow({approach_names[i], CorpusName(corpus), cells[0],
                    cells[1], cells[2], cells[3]});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper reference (Table 4):\n"
      "  NetZeroFacts:         CRF 0.64/0.59/0.61, zero-shot 0.63/0.65/0.64,"
      " few-shot 0.70/0.94/0.80, GoalSpotter 0.87/0.83/0.85\n"
      "  Sustainability Goals: CRF 0.60/0.86/0.71, zero-shot 0.71/0.86/0.78,"
      " few-shot 0.81/0.96/0.88, GoalSpotter 0.89/0.95/0.92\n");
}

}  // namespace
}  // namespace goalex::bench

int main() {
  goalex::bench::Run();
  return 0;
}
