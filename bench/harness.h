#ifndef GOALEX_BENCH_HARNESS_H_
#define GOALEX_BENCH_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "core/config.h"
#include "core/extractor.h"
#include "data/dataset.h"
#include "data/schema.h"
#include "eval/metrics.h"
#include "goalspotter/detector.h"

namespace goalex::bench {

/// Which evaluation corpus a harness run uses.
enum class Corpus { kNetZeroFacts, kSustainabilityGoals };

const char* CorpusName(Corpus corpus);

/// The extraction schema of a corpus.
const std::vector<std::string>& CorpusKinds(Corpus corpus);

/// Generates the corpus with the paper's instance counts and splits 80/20.
/// `run` perturbs the generator/split seeds so independent runs differ.
data::Split MakeSplit(Corpus corpus, uint64_t run);

/// One Table 4 row fragment: effectiveness plus time.
struct ApproachResult {
  eval::Prf prf;
  double minutes = 0.0;  ///< Train+inference minutes (simulated for LLMs).
};

/// Accumulates the mean over runs.
struct MeanResult {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double minutes = 0.0;
  int64_t runs = 0;

  void Add(const ApproachResult& r);
  std::vector<std::string> Cells() const;  ///< {P, R, F, T} formatted.
};

/// Trains the paper's system (weak supervision + transformer) on the split
/// and evaluates field-level P/R/F1 on the test set.
ApproachResult RunGoalSpotter(const data::Split& split, Corpus corpus,
                              core::ExtractorConfig config);

/// Default extractor config for a corpus (preset roberta, 10 epochs,
/// nominal lr 5e-5, batch 16).
core::ExtractorConfig DefaultExtractorConfig(Corpus corpus);

/// The CRF baseline: weak-labels the training split at word level, trains
/// a linear-chain CRF, decodes spans on the test set.
ApproachResult RunCrfBaseline(const data::Split& split, Corpus corpus);

/// The zero-/few-shot prompting baselines against the simulated LLM. Time
/// is the simulated API latency (see DESIGN.md §3).
ApproachResult RunPromptingBaseline(const data::Split& split, Corpus corpus,
                                    bool few_shot, uint64_t seed);

/// Number of independent runs to average; reads GOALEX_RUNS (default 3,
/// paper uses 5 — raise via the environment when time permits).
int RunCount();

/// Prints a snapshot of the default metrics registry alongside the bench
/// results, under a "=== metrics (<label>) ===" header. The format follows
/// GOALEX_METRICS: unset/"summary" = human-readable, "json" = one JSON
/// object, "prom" = Prometheus text exposition, "off" = print nothing.
/// No-op when the registry is empty (e.g. metrics compiled out).
void EmitMetricsSnapshot(const std::string& label);

/// The deployed GoalSpotter system of Section 5: an objective detector and
/// a detail extractor, both trained on the Sustainability Goals corpus.
struct DeployedSystem {
  std::unique_ptr<goalspotter::ObjectiveDetector> detector;
  std::unique_ptr<core::DetailExtractor> extractor;
};

/// Trains the full deployed system (used by the Table 5/6/7 benches).
DeployedSystem TrainDeployedSystem(uint64_t seed);

/// Evaluates predictions field-level against the gold test set.
eval::Prf Evaluate(const std::vector<data::Objective>& test,
                   const std::vector<data::DetailRecord>& predictions,
                   Corpus corpus);

}  // namespace goalex::bench

#endif  // GOALEX_BENCH_HARNESS_H_
