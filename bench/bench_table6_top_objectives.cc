// Regenerates Table 6: the extracted details for the top 2 sustainability
// objectives per company from the post-deployment data. "Top" follows the
// deployed system's detector confidence, mirroring how the paper surfaces
// its most salient detections. Also prints the per-company specificity
// signal the paper's discussion derives from this table (companies quoting
// amounts and deadlines are more specific).
#include <algorithm>
#include <cstdio>

#include "bench/harness.h"
#include "common/string_util.h"
#include "core/database.h"
#include "data/report.h"
#include "eval/table.h"
#include "goalspotter/pipeline.h"

namespace goalex::bench {
namespace {

void Run() {
  std::printf("Table 6: extracted details for the top 2 objectives per "
              "company (synthetic deployment fleet)\n\n");

  DeployedSystem system = TrainDeployedSystem(0);
  goalspotter::GoalSpotter pipeline(system.detector.get(),
                                    system.extractor.get());
  core::ObjectiveDatabase database;
  uint64_t company_seed = 1000;
  for (const data::CompanyProfile& profile :
       data::PaperDeploymentProfiles()) {
    std::vector<data::Report> reports =
        data::GenerateCompanyReports(profile, company_seed++);
    pipeline.ProcessReports(reports, &database);
  }

  eval::TextTable table({"Company", "Sustainability Objective", "Action",
                         "Amount", "Qualifier", "Baseline", "Deadline"});
  for (const data::CompanyProfile& profile :
       data::PaperDeploymentProfiles()) {
    std::vector<core::DbRow> rows = database.ByCompany(profile.name);
    std::sort(rows.begin(), rows.end(),
              [&](const core::DbRow& a, const core::DbRow& b) {
                return system.detector->Score(a.record.objective_text) >
                       system.detector->Score(b.record.objective_text);
              });
    for (size_t i = 0; i < rows.size() && i < 2; ++i) {
      const data::DetailRecord& record = rows[i].record;
      table.AddRow({profile.name, record.objective_text,
                    record.FieldOrEmpty("Action"),
                    record.FieldOrEmpty("Amount"),
                    record.FieldOrEmpty("Qualifier"),
                    record.FieldOrEmpty("Baseline"),
                    record.FieldOrEmpty("Deadline")});
    }
  }
  std::printf("%s\n", table.Render(46).c_str());

  std::printf("Specificity signal (share of extracted objectives quoting "
              "an Amount / a Deadline):\n");
  std::map<std::string, double> amount_coverage =
      database.FieldCoverageByCompany("Amount");
  std::map<std::string, double> deadline_coverage =
      database.FieldCoverageByCompany("Deadline");
  eval::TextTable specificity({"Company", "Amount %", "Deadline %"});
  for (const data::CompanyProfile& profile :
       data::PaperDeploymentProfiles()) {
    specificity.AddRow(
        {profile.name,
         FormatDouble(100.0 * amount_coverage[profile.name], 0),
         FormatDouble(100.0 * deadline_coverage[profile.name], 0)});
  }
  std::printf("%s\n", specificity.Render().c_str());
  std::printf(
      "Paper reference (Table 6): details are extracted per company; many "
      "objectives omit Baseline/Deadline, and companies differ in how "
      "specific their commitments are.\n");
}

}  // namespace
}  // namespace goalex::bench

int main() {
  goalex::bench::Run();
  return 0;
}
