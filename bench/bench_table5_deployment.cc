// Regenerates Table 5: the post-deployment summary. GoalSpotter (detector +
// detail extraction) sweeps the synthetic report fleet of 14 companies —
// 380 documents and 37,871 pages, matching the paper's corpus exactly —
// and reports per-company document/page counts and the number of extracted
// objectives.
#include <cstdio>

#include "bench/harness.h"
#include "core/database.h"
#include "data/report.h"
#include "eval/table.h"
#include "eval/timer.h"
#include "goalspotter/pipeline.h"

namespace goalex::bench {
namespace {

void Run() {
  std::printf("Table 5: post-deployment summary (synthetic report fleet "
              "matching the paper's corpus shape)\n\n");

  eval::Timer setup_timer;
  DeployedSystem system = TrainDeployedSystem(0);
  std::printf("trained deployed system in %.1f s\n\n",
              setup_timer.Seconds());

  goalspotter::GoalSpotter pipeline(system.detector.get(),
                                    system.extractor.get());
  core::ObjectiveDatabase database;

  eval::TextTable table(
      {"Company", "#Documents", "#Pages", "#Extracted Objectives"});
  goalspotter::PipelineStats total;
  eval::Timer sweep_timer;
  uint64_t company_seed = 1000;
  for (const data::CompanyProfile& profile :
       data::PaperDeploymentProfiles()) {
    std::vector<data::Report> reports =
        data::GenerateCompanyReports(profile, company_seed++);
    goalspotter::PipelineStats stats =
        pipeline.ProcessReports(reports, &database);
    total += stats;
    table.AddRow({profile.name, std::to_string(stats.documents),
                  std::to_string(stats.pages),
                  std::to_string(stats.detected_objectives)});
  }
  table.AddRow({"Total", std::to_string(total.documents),
                std::to_string(total.pages),
                std::to_string(total.detected_objectives)});
  std::printf("%s\n", table.Render().c_str());
  std::printf("swept %lld blocks in %.1f s; database now holds %zu rows\n",
              static_cast<long long>(total.blocks), sweep_timer.Seconds(),
              database.size());
  std::printf("detail extraction runtime: %s\n",
              total.extraction.ToString().c_str());
  std::printf(
      "Paper reference (Table 5): 380 documents, 37871 pages, 3580 "
      "extracted objectives in total (e.g., C1: 20/2131/150, C8: "
      "22/5012/764, C14: 12/2531/43).\n\n");
  EmitMetricsSnapshot("deployment sweep");
}

}  // namespace
}  // namespace goalex::bench

int main() {
  goalex::bench::Run();
  return 0;
}
