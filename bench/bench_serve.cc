// Serving benchmark: drives the continuous-batching extraction service
// with open-loop Poisson traffic and reports sustained QPS at a fixed p99
// target. Three phases:
//
//   1. steady  — offered load well under capacity: batches close on the
//                deadline timer, nothing is shed, p99 stays inside SLO.
//   2. overload — offered load past capacity with burst episodes: batches
//                close full (max-size trigger), admission sheds the
//                excess with RESOURCE_EXHAUSTED, and the p99 of ADMITTED
//                requests stays bounded — the whole point of load-shedding.
//   3. ramp    — increasing offered rates; the highest rate whose
//                measured p99 still meets the target is the sustained QPS.
//
// `--smoke` shrinks durations for CI. GOALEX_THREADS sets the inference
// fan-out; GOALEX_METRICS=summary prints the serve.* histograms
// (p50/p95/p99), QPS gauge, and shed counters at the end.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/check.h"
#include "data/generator.h"
#include "eval/table.h"
#include "eval/timer.h"
#include "runtime/thread_pool.h"
#include "serve/service.h"
#include "serve/workload.h"

namespace goalex::bench {
namespace {

int ServeThreads() {
  const char* env = std::getenv("GOALEX_THREADS");
  if (env != nullptr) {
    int threads = std::atoi(env);
    if (threads > 0) return threads;
  }
  return runtime::ThreadPool::DefaultThreadCount();
}

std::string Fmt(double v, int precision) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
  return std::string(buffer);
}

struct PhaseReport {
  std::string name;
  serve::ReplayResult replay;
  serve::ServeStats stats;
};

void AddPhaseRow(eval::TextTable& table, const PhaseReport& report,
                 double slo_p99_ms) {
  const serve::ReplayResult& r = report.replay;
  const double interactive_p99_ms =
      r.InteractiveLatencyPercentile(0.99) * 1000.0;
  table.AddRow({report.name, Fmt(r.offered_qps, 0),
                Fmt(r.completed_qps, 0),
                std::to_string(report.stats.shed),
                Fmt(r.LatencyPercentile(0.50) * 1000.0, 1),
                Fmt(interactive_p99_ms, 1),
                Fmt(serve::SortedPercentile(r.bulk_latencies_s, 0.99) *
                        1000.0,
                    1),
                interactive_p99_ms <= slo_p99_ms ? "yes" : "NO"});
}

PhaseReport RunPhase(const std::string& name,
                     const core::DetailExtractor& extractor,
                     const core::ServeConfig& serve_config,
                     const serve::TrafficConfig& traffic) {
  serve::ExtractionService service(&extractor, serve_config);
  std::vector<serve::TimedRequest> trace = serve::GenerateTrace(traffic);
  PhaseReport report;
  report.name = name;
  report.replay = serve::ReplayTrace(service.scheduler(), trace);
  service.Stop();
  report.stats = service.stats();
  std::printf(
      "%-9s offered %5.0f qps -> completed %5.0f qps, shed %llu, "
      "p50 %.1f ms, interactive p99 %.1f ms, bulk p99 %.1f ms; "
      "batch closes: %llu max-size, %llu deadline, %llu drain\n",
      name.c_str(), report.replay.offered_qps, report.replay.completed_qps,
      static_cast<unsigned long long>(report.stats.shed),
      report.replay.LatencyPercentile(0.50) * 1000.0,
      report.replay.InteractiveLatencyPercentile(0.99) * 1000.0,
      serve::SortedPercentile(report.replay.bulk_latencies_s, 0.99) *
          1000.0,
      static_cast<unsigned long long>(report.stats.closed_max_size),
      static_cast<unsigned long long>(report.stats.closed_deadline),
      static_cast<unsigned long long>(report.stats.closed_drain));
  return report;
}

int Run(bool smoke) {
  const int threads = ServeThreads();
  std::printf("Serving benchmark: continuous-batching extraction service\n");
  std::printf("inference threads: %d%s\n\n", threads,
              smoke ? " (smoke mode)" : "");

  // Train a small extractor once; the benchmark measures serving.
  data::SustainabilityGoalsConfig corpus_config;
  corpus_config.objective_count = smoke ? 300 : 400;
  std::vector<data::Objective> train =
      data::GenerateSustainabilityGoals(corpus_config);
  core::ExtractorConfig config =
      DefaultExtractorConfig(Corpus::kSustainabilityGoals);
  config.epochs = smoke ? 3 : 4;
  core::DetailExtractor extractor(config);
  eval::Timer train_timer;
  GOALEX_CHECK_OK(extractor.Train(train));
  std::printf("trained extractor in %.1f s\n", train_timer.Seconds());

  // Rough single-request service time, only to size the capacity probe.
  data::SustainabilityGoalsConfig calib_config;
  calib_config.objective_count = 64;
  calib_config.seed += 4242;
  std::vector<data::Objective> calibration =
      data::GenerateSustainabilityGoals(calib_config);
  eval::Timer calib_timer;
  for (const data::Objective& objective : calibration) {
    extractor.Extract(objective);
  }
  const double direct_ms =
      calib_timer.Seconds() * 1000.0 / calibration.size();

  // Measure real end-to-end capacity THROUGH the service: the scheduler
  // thread, the replay producer, and inference all share the machine, so
  // the direct-extract number is a large overestimate (especially on one
  // core). Saturate a service with a permissive SLO and take its drain
  // rate as capacity.
  core::ServeConfig probe_config;
  probe_config.num_threads = threads;
  probe_config.max_batch_size = 8;
  probe_config.batch_deadline_ms = 2.0;
  probe_config.max_queue_depth = 64;
  probe_config.slo_p99_ms = 1000.0;  // Depth-bound-only admission.
  serve::TrafficConfig probe_traffic;
  probe_traffic.rate_qps = 3.0 * threads * 1000.0 / direct_ms;
  probe_traffic.duration_s = smoke ? 0.3 : 0.6;
  probe_traffic.seed = 20;
  serve::ReplayResult probe;
  {
    serve::ExtractionService probe_service(&extractor, probe_config);
    probe = serve::ReplayTrace(probe_service.scheduler(),
                               serve::GenerateTrace(probe_traffic));
  }
  const double capacity_qps = probe.completed_qps;
  GOALEX_CHECK_MSG(capacity_qps > 0.0, "capacity probe completed nothing");
  const double effective_ms = threads * 1000.0 / capacity_qps;
  std::printf("calibration: %.2f ms/request direct, %.2f ms effective -> "
              "~%.0f qps capacity\n\n",
              direct_ms, effective_ms, capacity_qps);

  core::ServeConfig serve_config;
  serve_config.num_threads = threads;
  serve_config.max_batch_size = 8;
  serve_config.batch_deadline_ms = std::max(1.0, 4.0 * effective_ms);
  serve_config.max_queue_depth = 64;
  // SLO: batch formation plus three full batches of effective service
  // time, floored high enough to absorb scheduler jitter on small boxes.
  serve_config.slo_p99_ms =
      std::max(30.0, serve_config.batch_deadline_ms + 24.0 * effective_ms);
  // Admit only up to 30% of the SLO's delay budget: the rest is headroom
  // for the admitted request's own batch service time and timer jitter,
  // which the queueing-delay estimate deliberately excludes.
  serve_config.max_queue_delay_ms =
      0.3 * (serve_config.slo_p99_ms - serve_config.batch_deadline_ms);
  GOALEX_CHECK_OK(serve_config.Validate());
  std::printf("serve config: batch<=%d, deadline %.1f ms, SLO p99 %.1f ms, "
              "admit delay<=%.1f ms, queue<=%d\n\n",
              serve_config.max_batch_size, serve_config.batch_deadline_ms,
              serve_config.slo_p99_ms, serve_config.max_queue_delay_ms,
              serve_config.max_queue_depth);

  const double duration_s = smoke ? 0.5 : 2.0;
  std::vector<PhaseReport> reports;

  serve::TrafficConfig steady;
  steady.rate_qps = 0.35 * capacity_qps;
  steady.duration_s = duration_s;
  steady.seed = 21;
  reports.push_back(
      RunPhase("steady", extractor, serve_config, steady));

  serve::TrafficConfig overload;
  overload.rate_qps = 3.0 * capacity_qps;
  overload.duration_s = duration_s;
  overload.seed = 22;
  overload.burst_period_s = duration_s / 2.0;
  overload.burst_duration_s = duration_s / 8.0;
  overload.burst_multiplier = 2.0;
  reports.push_back(
      RunPhase("overload", extractor, serve_config, overload));

  // Ramp: sustained QPS = highest offered rate whose p99 meets the SLO.
  const std::vector<double> fractions =
      smoke ? std::vector<double>{0.4} : std::vector<double>{0.4, 0.7, 1.0};
  double sustained_qps = 0.0;
  for (double fraction : fractions) {
    serve::TrafficConfig ramp;
    ramp.rate_qps = fraction * capacity_qps;
    ramp.duration_s = duration_s;
    ramp.seed = 23;
    PhaseReport report = RunPhase("ramp", extractor, serve_config, ramp);
    if (report.replay.InteractiveLatencyPercentile(0.99) * 1000.0 <=
            serve_config.slo_p99_ms &&
        report.replay.completed_qps > sustained_qps) {
      sustained_qps = report.replay.completed_qps;
    }
    reports.push_back(std::move(report));
  }

  std::printf("\n");
  eval::TextTable table({"Phase", "Offered qps", "Completed qps", "Shed",
                         "p50 ms", "int p99 ms", "bulk p99 ms",
                         "SLO met"});
  for (const PhaseReport& report : reports) {
    AddPhaseRow(table, report, serve_config.slo_p99_ms);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("sustained QPS at p99 <= %.1f ms: %.0f\n\n",
              serve_config.slo_p99_ms, sustained_qps);

  // Sanity checks the CI smoke run relies on: both close triggers fired
  // somewhere, overload shed traffic, and steady-state met the SLO.
  uint64_t total_max_size = 0;
  uint64_t total_deadline = 0;
  for (const PhaseReport& report : reports) {
    total_max_size += report.stats.closed_max_size;
    total_deadline += report.stats.closed_deadline;
  }
  GOALEX_CHECK_MSG(total_max_size > 0,
                   "no batch ever closed on the max-size trigger");
  GOALEX_CHECK_MSG(total_deadline > 0,
                   "no batch ever closed on the deadline trigger");
  GOALEX_CHECK_MSG(reports[1].stats.shed > 0,
                   "overload phase shed nothing");
  GOALEX_CHECK_MSG(
      reports[1].replay.InteractiveLatencyPercentile(0.99) * 1000.0 <=
          serve_config.slo_p99_ms,
      "admitted interactive p99 blew the SLO under overload — admission "
      "control is not protecting latency");

  EmitMetricsSnapshot("serving");
  return 0;
}

}  // namespace
}  // namespace goalex::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return goalex::bench::Run(smoke);
}
