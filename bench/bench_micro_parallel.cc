// Microbenchmark of the parallel batched inference runtime: serial vs
// parallel throughput of DetailExtractor::ExtractAll and
// WeakLabeler::LabelAll, verifying on the way that the parallel outputs
// are identical to the serial ones (the runtime is order-preserving).
#include <cstdio>
#include <cstdlib>

#include "bench/harness.h"
#include "common/check.h"
#include "data/generator.h"
#include "eval/table.h"
#include "eval/timer.h"
#include "obs/metrics.h"
#include "runtime/batch_runner.h"
#include "runtime/stats.h"
#include "runtime/thread_pool.h"
#include "weaksup/weak_labeler.h"

namespace goalex::bench {
namespace {

// Thread count of the parallel runs: GOALEX_THREADS if set, else auto
// (hardware concurrency). The override lets a pinned CI runner benchmark a
// fixed fan-out.
int ParallelThreads() {
  const char* env = std::getenv("GOALEX_THREADS");
  if (env != nullptr) {
    int threads = std::atoi(env);
    if (threads > 0) return threads;
  }
  return runtime::ThreadPool::DefaultThreadCount();
}

void Run() {
  int parallel_threads = ParallelThreads();
  std::printf("Microbenchmark: parallel batched inference runtime\n");
  std::printf("hardware threads: %d, parallel runs use: %d\n\n",
              runtime::ThreadPool::DefaultThreadCount(), parallel_threads);

  // Train a small extractor once; the benchmark measures inference.
  data::SustainabilityGoalsConfig corpus_config;
  corpus_config.objective_count = 400;
  std::vector<data::Objective> train =
      data::GenerateSustainabilityGoals(corpus_config);
  core::ExtractorConfig config =
      DefaultExtractorConfig(Corpus::kSustainabilityGoals);
  config.epochs = 4;
  core::DetailExtractor extractor(config);
  eval::Timer train_timer;
  GOALEX_CHECK_OK(extractor.Train(train));
  std::printf("trained extractor in %.1f s\n\n", train_timer.Seconds());

  // A fresh evaluation corpus so the BPE encode cache sees unseen words
  // too, like production traffic does.
  data::SustainabilityGoalsConfig eval_config;
  eval_config.objective_count = 600;
  eval_config.seed += 9001;
  std::vector<data::Objective> objectives =
      data::GenerateSustainabilityGoals(eval_config);

  runtime::Stats serial;
  std::vector<data::DetailRecord> serial_records =
      extractor.ExtractAll(objectives, /*num_threads=*/1, &serial);
  runtime::Stats parallel;
  std::vector<data::DetailRecord> parallel_records =
      extractor.ExtractAll(objectives, parallel_threads, &parallel);

  GOALEX_CHECK_EQ(serial_records.size(), parallel_records.size());
  for (size_t i = 0; i < serial_records.size(); ++i) {
    GOALEX_CHECK(serial_records[i].objective_id ==
                 parallel_records[i].objective_id);
    GOALEX_CHECK(serial_records[i].fields == parallel_records[i].fields);
  }
  std::printf("parallel ExtractAll output is identical to serial (%zu "
              "records checked)\n\n",
              serial_records.size());

  // Pipelined vs batch-map mode. ExtractAll is now a staged task graph
  // (per-objective tokenize -> predict -> decode chains with cross-example
  // stage overlap); the batch path below is the pre-refactor shape — one
  // opaque Extract() task per objective on a BatchRunner map — still
  // expressible and used here as the throughput baseline.
  runtime::BatchRunner batch_runner(parallel_threads);
  std::vector<data::DetailRecord> batch_records =
      batch_runner.Map<data::DetailRecord>(
          objectives.size(),
          [&](size_t i) { return extractor.Extract(objectives[i]); });
  const runtime::Stats batch = batch_runner.last_stats();
  runtime::Stats pipelined;
  std::vector<data::DetailRecord> pipelined_records =
      extractor.ExtractAll(objectives, parallel_threads, &pipelined);
  GOALEX_CHECK_EQ(batch_records.size(), pipelined_records.size());
  for (size_t i = 0; i < batch_records.size(); ++i) {
    GOALEX_CHECK(batch_records[i].fields == pipelined_records[i].fields);
  }
  std::printf("pipelined ExtractAll output is identical to the batch map "
              "path (%zu records checked)\n\n",
              batch_records.size());

  eval::TextTable pipeline_table(
      {"Mode", "Threads", "Seconds", "Items/s", "Utilization"});
  auto fmt_early = [](double v, int precision) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
    return std::string(buffer);
  };
  pipeline_table.AddRow({"batch map", std::to_string(batch.threads),
                         fmt_early(batch.seconds, 2),
                         fmt_early(batch.ItemsPerSecond(), 1),
                         fmt_early(batch.Utilization(), 2)});
  pipeline_table.AddRow({"pipelined (staged graph)",
                         std::to_string(pipelined.threads),
                         fmt_early(pipelined.seconds, 2),
                         fmt_early(pipelined.ItemsPerSecond(), 1),
                         fmt_early(pipelined.Utilization(), 2)});
  std::printf("%s\n", pipeline_table.Render().c_str());

  weaksup::WeakLabeler labeler(&extractor.catalog(),
                               config.weak_labeler);
  eval::Timer label_serial_timer;
  std::vector<weaksup::WeakLabeling> label_serial =
      labeler.LabelAll(objectives, 1);
  double label_serial_s = label_serial_timer.Seconds();
  eval::Timer label_parallel_timer;
  std::vector<weaksup::WeakLabeling> label_parallel =
      labeler.LabelAll(objectives, parallel_threads);
  double label_parallel_s = label_parallel_timer.Seconds();
  GOALEX_CHECK_EQ(label_serial.size(), label_parallel.size());
  for (size_t i = 0; i < label_serial.size(); ++i) {
    GOALEX_CHECK(label_serial[i].label_ids == label_parallel[i].label_ids);
  }

  eval::TextTable table({"Stage", "Threads", "Seconds", "Items/s",
                         "Speedup"});
  auto fmt = [](double v, int precision) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
    return std::string(buffer);
  };
  table.AddRow({"ExtractAll (serial)", "1", fmt(serial.seconds, 2),
                fmt(serial.ItemsPerSecond(), 1), "1.00"});
  table.AddRow({"ExtractAll (parallel)", std::to_string(parallel.threads),
                fmt(parallel.seconds, 2), fmt(parallel.ItemsPerSecond(), 1),
                fmt(serial.seconds / parallel.seconds, 2)});
  table.AddRow({"LabelAll (serial)", "1", fmt(label_serial_s, 3),
                fmt(objectives.size() / label_serial_s, 0), "1.00"});
  table.AddRow({"LabelAll (parallel)", std::to_string(parallel_threads),
                fmt(label_parallel_s, 3),
                fmt(objectives.size() / label_parallel_s, 0),
                fmt(label_serial_s / label_parallel_s, 2)});
  std::printf("%s\n", table.Render().c_str());

  // Observability overhead: the same serial ExtractAll with metrics
  // disabled (runtime toggle) vs enabled. The instrumentation adds a few
  // clock reads and relaxed atomic increments per objective, so the two
  // rows should be indistinguishable up to timer noise.
  obs::SetEnabled(false);
  runtime::Stats metrics_off;
  extractor.ExtractAll(objectives, /*num_threads=*/1, &metrics_off);
  obs::SetEnabled(true);
  obs::MetricsRegistry::Default().Reset();
  runtime::Stats metrics_on;
  extractor.ExtractAll(objectives, /*num_threads=*/1, &metrics_on);

  eval::TextTable overhead({"Serial ExtractAll", "Seconds", "Items/s",
                            "Overhead"});
  overhead.AddRow({"metrics disabled", fmt(metrics_off.seconds, 3),
                   fmt(metrics_off.ItemsPerSecond(), 1), "--"});
  overhead.AddRow(
      {"metrics enabled", fmt(metrics_on.seconds, 3),
       fmt(metrics_on.ItemsPerSecond(), 1),
       fmt((metrics_on.seconds / metrics_off.seconds - 1.0) * 100.0, 1) +
           "%"});
  std::printf("%s\n", overhead.Render().c_str());

  // The per-stage latency histograms and throughput counters the enabled
  // run just recorded (format: GOALEX_METRICS=summary|json|prom).
  EmitMetricsSnapshot("metrics-enabled serial ExtractAll");
}

}  // namespace
}  // namespace goalex::bench

int main() {
  goalex::bench::Run();
  return 0;
}
