// Ablation of objective segmentation (Section 5.3 names multi-target
// objectives as a failure mode and segmentation as the fix). Evaluates the
// extractor with segmentation off (deployed) and on, on a corpus variant
// with an elevated share of multi-target objectives.
#include <cstdio>

#include "bench/harness.h"
#include "common/string_util.h"
#include "core/extractor.h"
#include "data/generator.h"
#include "eval/table.h"

namespace goalex::bench {
namespace {

data::Split MultiTargetSplit(uint64_t run) {
  data::SustainabilityGoalsConfig config;
  config.seed = 4242 + run * 1000;
  config.multi_target_rate = 0.45;  // Elevated from the default 0.12.
  return data::TrainTestSplit(data::GenerateSustainabilityGoals(config),
                              0.2, run + 51);
}

void Run() {
  std::printf("Ablation: objective segmentation on a multi-target-heavy "
              "Sustainability Goals variant (45%% multi-target)\n\n");
  const int runs = RunCount();
  eval::TextTable table({"Variant", "P", "R", "F"});
  for (bool segment : {false, true}) {
    MeanResult mean;
    for (int run = 0; run < runs; ++run) {
      data::Split split = MultiTargetSplit(static_cast<uint64_t>(run));
      core::ExtractorConfig config =
          DefaultExtractorConfig(Corpus::kSustainabilityGoals);
      config.segment_multi_target = segment;
      config.seed += static_cast<uint64_t>(run);
      mean.Add(RunGoalSpotter(split, Corpus::kSustainabilityGoals,
                              std::move(config)));
    }
    std::vector<std::string> cells = mean.Cells();
    table.AddRow({segment ? "with segmentation (future work)"
                          : "no segmentation (deployed)",
                  cells[0], cells[1], cells[2]});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Expected shape: segmentation reduces the confusion caused by "
      "second targets (the deployed system's documented failure mode).\n");
}

}  // namespace
}  // namespace goalex::bench

int main() {
  goalex::bench::Run();
  return 0;
}
