// Ablation of the design decisions DESIGN.md calls out around weak
// labeling: exact vs fuzzy annotation matching (Section 5.3 names fuzzy
// matching as future work) and GoalSpotter-style text normalization on/off.
// Reports weak-label coverage (annotation match rate) and end-task F1 on
// the Sustainability Goals corpus.
#include <cstdio>

#include "bench/harness.h"
#include "common/string_util.h"
#include "core/extractor.h"
#include "eval/table.h"

namespace goalex::bench {
namespace {

struct Variant {
  const char* name;
  bool exact_match;
  bool normalize_text;
};

void Run() {
  std::printf("Ablation: weak-label matching mode and text normalization "
              "(Sustainability Goals)\n\n");

  const Variant variants[] = {
      {"exact match + normalization (deployed)", true, true},
      {"fuzzy match + normalization (future work)", false, true},
      {"exact match, no normalization", true, false},
      {"fuzzy match, no normalization", false, false},
  };

  const int runs = RunCount();
  eval::TextTable table(
      {"Variant", "Weak-label match rate", "P", "R", "F"});
  for (const Variant& variant : variants) {
    double match_rate_sum = 0.0;
    MeanResult mean;
    for (int run = 0; run < runs; ++run) {
      data::Split split = MakeSplit(Corpus::kSustainabilityGoals,
                                    static_cast<uint64_t>(run));
      core::ExtractorConfig config =
          DefaultExtractorConfig(Corpus::kSustainabilityGoals);
      config.weak_labeler.exact_match = variant.exact_match;
      config.normalize_text = variant.normalize_text;
      config.seed += static_cast<uint64_t>(run);

      core::DetailExtractor extractor(config);
      GOALEX_CHECK_OK(extractor.Train(split.train));
      match_rate_sum += extractor.last_train_stats().MatchRate();

      ApproachResult result;
      std::vector<data::DetailRecord> predictions =
          extractor.ExtractAll(split.test);
      result.prf =
          Evaluate(split.test, predictions, Corpus::kSustainabilityGoals);
      mean.Add(result);
    }
    std::vector<std::string> cells = mean.Cells();
    table.AddRow({variant.name, FormatDouble(match_rate_sum / runs, 3),
                  cells[0], cells[1], cells[2]});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Expected shape: fuzzy matching recovers the lexically divergent "
      "annotations (higher weak-label coverage), trading some precision; "
      "normalization protects against superficial noise.\n");
}

}  // namespace
}  // namespace goalex::bench

int main() {
  goalex::bench::Run();
  return 0;
}
