// Microbenchmark of the data-parallel training runtime: fine-tuning the
// production-dimension token classifier at 1/2/4/8 worker threads. Every
// run trains from the same seed on the same corpus, so the resulting
// extractions are cross-checked for exact equality while timing — the
// speedup is measured on provably bit-identical work. One machine-readable
// JSON row per thread count lets CI track the scaling over time.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/check.h"
#include "core/extractor.h"
#include "data/generator.h"
#include "eval/table.h"
#include "eval/timer.h"

namespace goalex::bench {
namespace {

struct TrainRun {
  double train_seconds = 0.0;
  double finetune_seconds = 0.0;  ///< Epoch loop only (from EpochStats).
  double final_loss = 0.0;
  std::vector<std::string> extractions;
};

TrainRun TrainOnce(int32_t threads,
                   const std::vector<data::Objective>& corpus,
                   const std::vector<data::Objective>& probes) {
  core::ExtractorConfig config =
      DefaultExtractorConfig(Corpus::kSustainabilityGoals);
  config.epochs = 4;  // Enough epochs to dominate setup cost while timing.
  config.num_threads = threads;

  core::DetailExtractor extractor(config);
  TrainRun run;
  eval::Timer timer;
  Status status = extractor.Train(corpus, [&](const core::EpochStats& stats) {
    run.finetune_seconds += stats.seconds;
    run.final_loss = stats.mean_train_loss;
  });
  run.train_seconds = timer.Seconds();
  GOALEX_CHECK_MSG(status.ok(), status.message());

  for (const data::DetailRecord& record : extractor.ExtractAll(probes)) {
    std::string row;
    for (const auto& [kind, value] : record.fields) {
      row += kind + "=" + value + ";";
    }
    run.extractions.push_back(std::move(row));
  }
  return run;
}

void Run() {
  data::SustainabilityGoalsConfig corpus_config;
  corpus_config.objective_count = 600;
  std::vector<data::Objective> corpus =
      data::GenerateSustainabilityGoals(corpus_config);
  std::vector<data::Objective> probes(corpus.begin(), corpus.begin() + 50);

  std::printf(
      "Microbenchmark: deterministic data-parallel training runtime\n");
  std::printf(
      "%zu objectives, 4 epochs, production model dims (preset defaults); "
      "all thread counts verified to produce identical extractions\n\n",
      corpus.size());

  eval::TextTable table({"Threads", "Fine-tune s", "Train total s",
                         "Examples/s", "Speedup"});
  auto fmt = [](double v, int precision) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
    return std::string(buffer);
  };

  TrainRun serial;
  for (int threads : {1, 2, 4, 8}) {
    TrainRun run = TrainOnce(threads, corpus, probes);
    if (threads == 1) {
      serial = run;
    } else {
      // Determinism gate: the timed parallel runs must land on the same
      // model as the serial run, field for field.
      GOALEX_CHECK(run.extractions == serial.extractions);
      GOALEX_CHECK(run.final_loss == serial.final_loss);
    }
    double speedup = serial.finetune_seconds / run.finetune_seconds;
    double examples_per_s =
        static_cast<double>(corpus.size()) * 4.0 / run.finetune_seconds;
    table.AddRow({std::to_string(threads), fmt(run.finetune_seconds, 3),
                  fmt(run.train_seconds, 3), fmt(examples_per_s, 0),
                  fmt(speedup, 2)});
    std::printf(
        "{\"bench\":\"micro_train\",\"threads\":%d,\"examples\":%zu,"
        "\"epochs\":4,\"finetune_seconds\":%.6f,\"train_seconds\":%.6f,"
        "\"examples_per_s\":%.1f,\"speedup\":%.3f}\n",
        threads, corpus.size(), run.finetune_seconds, run.train_seconds,
        examples_per_s, speedup);
  }
  std::printf("\n%s\n", table.Render().c_str());
  EmitMetricsSnapshot("training runtime run");
}

}  // namespace
}  // namespace goalex::bench

int main() {
  goalex::bench::Run();
  return 0;
}
