// Regenerates Figure 4 (model panel): F1 and fine-tuning time of the four
// transformer presets (BERT-like, DistilBERT-like, RoBERTa-like,
// DistilRoBERTa-like) on the Sustainability Goals corpus. The paper's
// findings: RoBERTa slightly above BERT; original models slightly above
// their distilled halves; distilled models train faster.
#include <cstdio>

#include "bench/harness.h"
#include "common/string_util.h"
#include "eval/table.h"

namespace goalex::bench {
namespace {

void Run() {
  const int runs = RunCount();
  std::printf(
      "Figure 4 (effect of the transformer model): presets on the "
      "Sustainability Goals dataset (mean of %d runs)\n\n",
      runs);

  const core::ModelPreset presets[] = {
      core::ModelPreset::kBert, core::ModelPreset::kDistilBert,
      core::ModelPreset::kRoberta, core::ModelPreset::kDistilRoberta};

  eval::TextTable table({"Model", "P", "R", "F", "Fine-tune+eval (min)"});
  for (core::ModelPreset preset : presets) {
    MeanResult mean;
    for (int run = 0; run < runs; ++run) {
      data::Split split = MakeSplit(Corpus::kSustainabilityGoals,
                                    static_cast<uint64_t>(run));
      core::ExtractorConfig config =
          DefaultExtractorConfig(Corpus::kSustainabilityGoals);
      config.preset = preset;
      config.seed += static_cast<uint64_t>(run);
      mean.Add(RunGoalSpotter(split, Corpus::kSustainabilityGoals,
                              std::move(config)));
    }
    std::vector<std::string> cells = mean.Cells();
    table.AddRow({core::ModelPresetName(preset), cells[0], cells[1],
                  cells[2], FormatDouble(mean.minutes / mean.runs, 2)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper reference: RoBERTa > BERT (slightly); originals > distilled "
      "versions (slightly); distilled versions are faster.\n");
}

}  // namespace
}  // namespace goalex::bench

int main() {
  goalex::bench::Run();
  return 0;
}
