// Regenerates Table 7: detail extraction from a single dense sustainability
// report (the paper's report-level scenario). GoalSpotter detects the
// objectives in one synthetic report and extracts their details into a
// structured table.
#include <algorithm>
#include <cstdio>

#include "bench/harness.h"
#include "core/database.h"
#include "data/report.h"
#include "eval/table.h"
#include "goalspotter/pipeline.h"

namespace goalex::bench {
namespace {

void Run() {
  std::printf("Table 7: extracted details from one example sustainability "
              "report\n\n");

  DeployedSystem system = TrainDeployedSystem(0);
  goalspotter::GoalSpotter pipeline(system.detector.get(),
                                    system.extractor.get());

  // One dense report, like the paper's example (a large tech company's
  // environmental report with varied objectives).
  data::Report report =
      data::GenerateSingleReport("ExampleCo", /*page_count=*/85,
                                 /*objective_count=*/12, /*seed=*/4242);
  core::ObjectiveDatabase database;
  goalspotter::PipelineStats stats =
      pipeline.ProcessReport(report, &database);
  std::printf("report: %d pages, %lld blocks, %lld detected objectives\n\n",
              report.page_count, static_cast<long long>(stats.blocks),
              static_cast<long long>(stats.detected_objectives));

  std::vector<core::DbRow> rows = database.ByCompany("ExampleCo");
  std::sort(rows.begin(), rows.end(),
            [&](const core::DbRow& a, const core::DbRow& b) {
              return system.detector->Score(a.record.objective_text) >
                     system.detector->Score(b.record.objective_text);
            });

  eval::TextTable table({"Sustainability Objective", "Action", "Amount",
                         "Qualifier", "Baseline", "Deadline", "Page"});
  for (size_t i = 0; i < rows.size() && i < 6; ++i) {
    const data::DetailRecord& record = rows[i].record;
    table.AddRow({record.objective_text, record.FieldOrEmpty("Action"),
                  record.FieldOrEmpty("Amount"),
                  record.FieldOrEmpty("Qualifier"),
                  record.FieldOrEmpty("Baseline"),
                  record.FieldOrEmpty("Deadline"),
                  std::to_string(rows[i].page)});
  }
  std::printf("%s\n", table.Render(52).c_str());
  std::printf(
      "Paper reference (Table 7): six objectives from one report with "
      "their Action/Amount/Qualifier/Baseline/Deadline details; some "
      "fields are legitimately empty when the objective omits them.\n");
}

}  // namespace
}  // namespace goalex::bench

int main() {
  goalex::bench::Run();
  return 0;
}
