// Microbenchmark of the inference stack, two comparisons deep:
//  - the graph-free per-example engine vs the autograd evaluation path, at
//    1/4/8 worker threads (the PR-5 speedup, tracked so it never regresses);
//  - padding-free packed-batch inference (float and int8) vs the
//    per-example engine, swept over batch sizes 1/8/64/512 with
//    tokens-per-second throughput per path.
// Correctness is checked while timing: the per-example engine must match
// autograd exactly, and the packed float path must match the per-example
// engine bit-for-bit (full logits, not just argmax). The three packed-sweep
// paths run interleaved round-robin within one process so machine
// throughput drift hits them equally. Each configuration emits one
// machine-readable JSON row for CI trend tracking.
//
// --smoke runs the batch-64 sweep only and turns three properties into
// hard CHECKs (CI runs this on every push):
//  - packed float logits bit-identical to the per-example engine;
//  - packed int8 throughput >= 1.5x the per-example engine at batch 64;
//  - int8 extraction F1 within 0.5 points of float on a held-out split
//    (same trained weights via Save/Load).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/extractor.h"
#include "data/generator.h"
#include "eval/table.h"
#include "eval/timer.h"
#include "infer/engine.h"
#include "infer/packed.h"
#include "nn/transformer.h"
#include "runtime/stats.h"

namespace goalex::bench {
namespace {

/// Sequence-length traffic modeled on the extractor's production inputs:
/// BOS + 8..70 subwords + EOS under max_seq_len 96.
std::vector<std::vector<int32_t>> MakeTraffic(
    const nn::TransformerConfig& config, size_t count, Rng& rng) {
  std::vector<std::vector<int32_t>> traffic;
  traffic.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t len = static_cast<size_t>(rng.NextInt(10, 72));
    std::vector<int32_t> ids(len);
    for (size_t j = 0; j < len; ++j) {
      ids[j] = rng.NextInt(0, config.vocab_size - 1);
    }
    traffic.push_back(std::move(ids));
  }
  return traffic;
}

std::vector<const std::vector<int32_t>*> Ptrs(
    const std::vector<std::vector<int32_t>>& batch) {
  std::vector<const std::vector<int32_t>*> ptrs;
  ptrs.reserve(batch.size());
  for (const std::vector<int32_t>& seq : batch) ptrs.push_back(&seq);
  return ptrs;
}

/// Runs `predict` over the traffic partitioned across `threads` workers and
/// returns wall-clock seconds.
template <typename Predict>
double TimedRun(const std::vector<std::vector<int32_t>>& traffic,
                int threads, const Predict& predict) {
  eval::Timer timer;
  if (threads <= 1) {
    for (const auto& ids : traffic) predict(ids);
    return timer.Seconds();
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < traffic.size();
           i += static_cast<size_t>(threads)) {
        predict(traffic[i]);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  return timer.Seconds();
}

/// CHECKs that the packed float engine reproduces the per-example engine
/// bit-for-bit on `batch`: per-token labels and full logits.
void CheckPackedBitIdentity(const infer::Engine& engine,
                            const infer::PackedEngine& packed,
                            const std::vector<std::vector<int32_t>>& batch) {
  std::vector<std::vector<int32_t>> labels = packed.PredictBatch(Ptrs(batch));
  for (size_t i = 0; i < batch.size(); ++i) {
    GOALEX_CHECK_MSG(labels[i] == engine.PredictTokens(batch[i]),
                     "packed float labels diverge from per-example engine");
  }
  std::unique_ptr<infer::ExecutionContext> ctx = engine.NewContext();
  std::vector<infer::PackedChunk> chunks = infer::PackByLength(
      Ptrs(batch), packed.max_seq_len(), packed.chunk_tokens());
  for (const infer::PackedChunk& chunk : chunks) {
    infer::PackedEngine::ChunkLogits logits = packed.ForwardChunk(chunk);
    for (int64_t s = 0; s < chunk.size(); ++s) {
      const std::vector<int32_t>& ids = batch[chunk.sequence[s]];
      tensor::TensorView ref = engine.Execute(ids, *ctx);
      const int64_t t = chunk.offsets[s + 1] - chunk.offsets[s];
      GOALEX_CHECK(ref.rows() == t);
      for (int64_t p = 0; p < t; ++p) {
        const float* got = logits.data + (chunk.offsets[s] + p) * logits.cols;
        for (int64_t j = 0; j < packed.num_labels(); ++j) {
          GOALEX_CHECK_MSG(got[j] == ref.at(p, j),
                           "packed float logits diverge from per-example "
                           "engine");
        }
      }
    }
  }
}

/// One packed-sweep configuration: per-example engine vs packed float vs
/// packed int8, interleaved rounds, tokens/sec per path. Returns the int8
/// speedup over the per-example engine (the smoke-gated number).
double RunPackedSweep(const nn::TokenClassifier& model,
                      const infer::Engine& engine, size_t batch_size,
                      Rng& rng, eval::TextTable& table) {
  infer::PackedEngine packed_float(model, infer::PackedEngineOptions{});
  infer::PackedEngineOptions int8_options;
  int8_options.quantize_int8 = true;
  infer::PackedEngine packed_int8(model, int8_options);

  std::vector<std::vector<int32_t>> batch =
      MakeTraffic(model.encoder().config(), batch_size, rng);
  std::vector<const std::vector<int32_t>*> ptrs = Ptrs(batch);
  int64_t batch_tokens = 0;
  for (const auto& seq : batch) {
    batch_tokens += static_cast<int64_t>(seq.size());
  }

  // Enough rounds that each path sees ~200k tokens; interleave the three
  // paths inside every round so throughput drift hits them equally.
  const int rounds = static_cast<int>(
      std::max<int64_t>(3, 200000 / std::max<int64_t>(1, batch_tokens)));
  auto run_engine = [&] {
    for (const auto& seq : batch) engine.PredictTokens(seq);
  };
  auto run_float = [&] { packed_float.PredictBatch(ptrs); };
  auto run_int8 = [&] { packed_int8.PredictBatch(ptrs); };
  run_engine();  // Warm all three paths before timing.
  run_float();
  run_int8();

  double engine_s = 0.0;
  double float_s = 0.0;
  double int8_s = 0.0;
  for (int r = 0; r < rounds; ++r) {
    {
      eval::Timer timer;
      run_engine();
      engine_s += timer.Seconds();
    }
    {
      eval::Timer timer;
      run_float();
      float_s += timer.Seconds();
    }
    {
      eval::Timer timer;
      run_int8();
      int8_s += timer.Seconds();
    }
  }
  const double tokens =
      static_cast<double>(batch_tokens) * static_cast<double>(rounds);
  const double engine_tps = tokens / engine_s;
  const double float_tps = tokens / float_s;
  const double int8_tps = tokens / int8_s;
  auto fmt = [](double v, int precision) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
    return std::string(buffer);
  };
  table.AddRow({std::to_string(batch_size), fmt(engine_tps, 0),
                fmt(float_tps, 0), fmt(int8_tps, 0),
                fmt(float_tps / engine_tps, 2), fmt(int8_tps / engine_tps, 2)});
  std::printf(
      "{\"bench\":\"micro_infer\",\"mode\":\"packed\",\"batch\":%zu,"
      "\"rounds\":%d,\"engine_tokens_per_s\":%.0f,"
      "\"packed_float_tokens_per_s\":%.0f,\"packed_int8_tokens_per_s\":%.0f,"
      "\"float_speedup\":%.3f,\"int8_speedup\":%.3f}\n",
      batch_size, rounds, engine_tps, float_tps, int8_tps,
      float_tps / engine_tps, int8_tps / engine_tps);
  return int8_tps / engine_tps;
}

/// Trains a small float extractor, round-trips the weights through
/// Save/Load into an int8-configured twin, and CHECKs that held-out
/// extraction F1 moves by at most 0.5 points.
void CheckInt8F1Parity() {
  // A properly converged (if scaled-down) model: the quantization budget
  // is only meaningful when the float logits are decisively separated — an
  // undertrained model flips argmaxes on noise alone.
  data::SustainabilityGoalsConfig corpus_config;
  corpus_config.objective_count = 600;
  std::vector<data::Objective> corpus =
      data::GenerateSustainabilityGoals(corpus_config);
  data::Split split = data::TrainTestSplit(corpus, 0.2, 3);

  // The F1 budget is 0.5 points; on a 120-objective test set one flipped
  // span moves F1 by more than that, so the delta would measure sampling
  // noise, not quantization. Evaluate on a large independently-seeded
  // corpus instead to pin the true gap.
  data::SustainabilityGoalsConfig eval_config;
  eval_config.objective_count = 2000;
  eval_config.seed = 43;
  std::vector<data::Objective> eval_set =
      data::GenerateSustainabilityGoals(eval_config);

  core::ExtractorConfig config =
      DefaultExtractorConfig(Corpus::kSustainabilityGoals);
  config.bpe_merges = 1600;
  core::DetailExtractor extractor(config);
  GOALEX_CHECK(extractor.Train(split.train).ok());

  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "goalex_infer_smoke_model";
  std::filesystem::create_directories(dir);
  GOALEX_CHECK(extractor.Save(dir.string()).ok());

  core::ExtractorConfig int8_config = config;
  int8_config.quantize_int8 = true;
  core::DetailExtractor int8_extractor(int8_config);
  GOALEX_CHECK(int8_extractor.Load(dir.string()).ok());
  std::filesystem::remove_all(dir);

  eval::Prf float_prf =
      Evaluate(eval_set, extractor.ExtractAll(eval_set),
               Corpus::kSustainabilityGoals);
  eval::Prf int8_prf =
      Evaluate(eval_set, int8_extractor.ExtractAll(eval_set),
               Corpus::kSustainabilityGoals);
  const double delta = float_prf.f1 - int8_prf.f1;
  std::printf(
      "{\"bench\":\"micro_infer\",\"mode\":\"int8_f1\",\"float_f1\":%.4f,"
      "\"int8_f1\":%.4f,\"delta\":%.4f}\n",
      float_prf.f1, int8_prf.f1, delta);
  // The quantization budget: int8 may cost at most 0.5 F1 points.
  GOALEX_CHECK_MSG(delta <= 0.005 && delta >= -0.005,
                   "int8 extraction F1 diverged more than 0.5 points from "
                   "float");
}

void Run(bool smoke) {
  // The production architecture (DefaultExtractorConfig dimensions); the
  // weights are random — timing is weight-independent.
  core::ExtractorConfig extractor_config =
      DefaultExtractorConfig(Corpus::kSustainabilityGoals);
  nn::TransformerConfig config =
      extractor_config.BuildTransformerConfig(/*vocab_size=*/2800);
  Rng rng(13);
  nn::TokenClassifier model(config, /*num_labels=*/11, rng);
  infer::Engine engine = infer::Engine::ForTokenClassifier(model);

  std::printf("Microbenchmark: inference engine%s\n",
              smoke ? " (smoke)" : "");
  std::printf("model: d_model=%d heads=%d layers=%d ffn=%d max_seq_len=%d\n\n",
              config.d_model, config.heads, config.layers, config.ffn_dim,
              config.max_seq_len);

  auto fmt = [](double v, int precision) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
    return std::string(buffer);
  };

  if (!smoke) {
    // Part 1: per-example engine vs autograd across thread counts.
    Rng traffic_rng(14);
    std::vector<std::vector<int32_t>> traffic =
        MakeTraffic(config, /*count=*/1500, traffic_rng);
    // Exactness first: every timed prediction pair must agree.
    for (const auto& ids : traffic) {
      GOALEX_CHECK(engine.PredictTokens(ids) == model.Predict(ids));
    }
    std::printf("engine vs autograd: %zu sequences (outputs identical)\n",
                traffic.size());
    std::printf("arena bytes per worker context: %zu\n\n",
                engine.arena_bytes_per_context());
    eval::TextTable table({"Threads", "Autograd s", "Engine s",
                           "Autograd seq/s", "Engine seq/s", "Speedup"});
    for (int threads : {1, 4, 8}) {
      // Warm both paths (page in weights, size thread-local arenas) so the
      // timed region is steady-state.
      TimedRun(traffic, threads,
               [&](const std::vector<int32_t>& ids) { model.Predict(ids); });
      double autograd_s = TimedRun(
          traffic, threads,
          [&](const std::vector<int32_t>& ids) { model.Predict(ids); });
      TimedRun(traffic, threads, [&](const std::vector<int32_t>& ids) {
        engine.PredictTokens(ids);
      });
      double engine_s = TimedRun(traffic, threads,
                                 [&](const std::vector<int32_t>& ids) {
                                   engine.PredictTokens(ids);
                                 });
      double speedup = autograd_s / engine_s;
      double n = static_cast<double>(traffic.size());
      table.AddRow({std::to_string(threads), fmt(autograd_s, 3),
                    fmt(engine_s, 3), fmt(n / autograd_s, 0),
                    fmt(n / engine_s, 0), fmt(speedup, 2)});
      std::printf(
          "{\"bench\":\"micro_infer\",\"threads\":%d,\"sequences\":%zu,"
          "\"autograd_seconds\":%.6f,\"engine_seconds\":%.6f,"
          "\"autograd_seq_per_s\":%.1f,\"engine_seq_per_s\":%.1f,"
          "\"speedup\":%.3f}\n",
          threads, traffic.size(), autograd_s, engine_s, n / autograd_s,
          n / engine_s, speedup);
    }
    std::printf("\n%s\n", table.Render().c_str());
  }

  // Part 2: packed-batch sweep. Bit-identity is checked before timing.
  {
    Rng check_rng(15);
    infer::PackedEngine packed_float(model, infer::PackedEngineOptions{});
    CheckPackedBitIdentity(engine, packed_float,
                           MakeTraffic(config, 64, check_rng));
    std::printf(
        "packed float verified bit-identical to per-example engine\n\n");
  }
  eval::TextTable packed_table({"Batch", "Engine tok/s", "Packed f32 tok/s",
                                "Packed int8 tok/s", "f32 speedup",
                                "int8 speedup"});
  double int8_speedup_at_64 = 0.0;
  Rng sweep_rng(16);
  const std::vector<size_t> batches =
      smoke ? std::vector<size_t>{64} : std::vector<size_t>{1, 8, 64, 512};
  for (size_t batch_size : batches) {
    double int8_speedup =
        RunPackedSweep(model, engine, batch_size, sweep_rng, packed_table);
    if (batch_size == 64) int8_speedup_at_64 = int8_speedup;
  }
  std::printf("\n%s\n", packed_table.Render().c_str());

  if (smoke) {
    // CI gate: packed int8 regressing below 1.5x the per-example engine at
    // batch 64 means the padding-free path lost its reason to exist.
    GOALEX_CHECK_MSG(int8_speedup_at_64 >= 1.5,
                     "packed int8 inference regressed below 1.5x the "
                     "per-example engine at batch 64");
    CheckInt8F1Parity();
  }
  EmitMetricsSnapshot("inference engine run");
}

}  // namespace
}  // namespace goalex::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") smoke = true;
  }
  goalex::bench::Run(smoke);
  return 0;
}
