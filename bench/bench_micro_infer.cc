// Microbenchmark of the graph-free inference engine: the predict stage
// (transformer forward + argmax) on the autograd evaluation path vs the
// compiled arena-backed plan, at 1/4/8 worker threads, over realistic
// sequence-length traffic. Outputs are cross-checked for exact equality
// while timing, and each thread count emits one machine-readable JSON row
// so CI can track the speedup over time.
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/extractor.h"
#include "data/generator.h"
#include "eval/table.h"
#include "eval/timer.h"
#include "infer/engine.h"
#include "nn/transformer.h"
#include "runtime/stats.h"

namespace goalex::bench {
namespace {

/// Sequence-length traffic modeled on the extractor's production inputs:
/// BOS + 8..70 subwords + EOS under max_seq_len 96.
std::vector<std::vector<int32_t>> MakeTraffic(
    const nn::TransformerConfig& config, size_t count, Rng& rng) {
  std::vector<std::vector<int32_t>> traffic;
  traffic.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t len = static_cast<size_t>(rng.NextInt(10, 72));
    std::vector<int32_t> ids(len);
    for (size_t j = 0; j < len; ++j) {
      ids[j] = rng.NextInt(0, config.vocab_size - 1);
    }
    traffic.push_back(std::move(ids));
  }
  return traffic;
}

/// Runs `predict` over the traffic partitioned across `threads` workers and
/// returns wall-clock seconds.
template <typename Predict>
double TimedRun(const std::vector<std::vector<int32_t>>& traffic,
                int threads, const Predict& predict) {
  eval::Timer timer;
  if (threads <= 1) {
    for (const auto& ids : traffic) predict(ids);
    return timer.Seconds();
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < traffic.size();
           i += static_cast<size_t>(threads)) {
        predict(traffic[i]);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  return timer.Seconds();
}

void Run() {
  // The production architecture (DefaultExtractorConfig dimensions); the
  // weights are random — timing is weight-independent.
  core::ExtractorConfig extractor_config =
      DefaultExtractorConfig(Corpus::kSustainabilityGoals);
  nn::TransformerConfig config =
      extractor_config.BuildTransformerConfig(/*vocab_size=*/2800);
  Rng rng(13);
  nn::TokenClassifier model(config, /*num_labels=*/11, rng);
  infer::Engine engine = infer::Engine::ForTokenClassifier(model);

  Rng traffic_rng(14);
  std::vector<std::vector<int32_t>> traffic =
      MakeTraffic(config, /*count=*/1500, traffic_rng);

  // Exactness first: every timed prediction pair must agree.
  for (const auto& ids : traffic) {
    GOALEX_CHECK(engine.PredictTokens(ids) == model.Predict(ids));
  }
  std::printf(
      "Microbenchmark: graph-free inference engine vs autograd predict\n");
  std::printf(
      "model: d_model=%d heads=%d layers=%d ffn=%d max_seq_len=%d; "
      "%zu sequences (engine output verified identical)\n\n",
      config.d_model, config.heads, config.layers, config.ffn_dim,
      config.max_seq_len, traffic.size());
  std::printf("arena bytes per worker context: %zu\n\n",
              engine.arena_bytes_per_context());

  eval::TextTable table(
      {"Threads", "Autograd s", "Engine s", "Autograd seq/s", "Engine seq/s",
       "Speedup"});
  auto fmt = [](double v, int precision) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
    return std::string(buffer);
  };
  for (int threads : {1, 4, 8}) {
    // Warm both paths (page in weights, size thread-local arenas) so the
    // timed region is steady-state.
    TimedRun(traffic, threads,
             [&](const std::vector<int32_t>& ids) { model.Predict(ids); });
    double autograd_s = TimedRun(
        traffic, threads,
        [&](const std::vector<int32_t>& ids) { model.Predict(ids); });
    TimedRun(traffic, threads, [&](const std::vector<int32_t>& ids) {
      engine.PredictTokens(ids);
    });
    double engine_s = TimedRun(traffic, threads,
                               [&](const std::vector<int32_t>& ids) {
                                 engine.PredictTokens(ids);
                               });
    double speedup = autograd_s / engine_s;
    double n = static_cast<double>(traffic.size());
    table.AddRow({std::to_string(threads), fmt(autograd_s, 3),
                  fmt(engine_s, 3), fmt(n / autograd_s, 0),
                  fmt(n / engine_s, 0), fmt(speedup, 2)});
    // One JSON row per thread count for CI trend tracking.
    std::printf(
        "{\"bench\":\"micro_infer\",\"threads\":%d,\"sequences\":%zu,"
        "\"autograd_seconds\":%.6f,\"engine_seconds\":%.6f,"
        "\"autograd_seq_per_s\":%.1f,\"engine_seq_per_s\":%.1f,"
        "\"speedup\":%.3f}\n",
        threads, traffic.size(), autograd_s, engine_s, n / autograd_s,
        n / engine_s, speedup);
  }
  std::printf("\n%s\n", table.Render().c_str());
  EmitMetricsSnapshot("inference engine run");
}

}  // namespace
}  // namespace goalex::bench

int main() {
  goalex::bench::Run();
  return 0;
}
