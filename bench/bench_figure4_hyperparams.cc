// Regenerates Figure 4 (epochs / learning-rate panels): F1 on the
// Sustainability Goals test set as a function of training epochs, for each
// nominal learning rate in {1e-5, 5e-5, 1e-4, 5e-4}. One training run per
// learning rate; the model is evaluated at the end of every epoch via the
// epoch callback. The paper's finding: with the learning rate at 5e-5 the
// model reaches its best F1 within about 10 epochs, and nearby settings
// converge similarly (very large rates destabilize training).
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "common/string_util.h"
#include "core/extractor.h"
#include "eval/table.h"
#include "text/normalizer.h"

namespace goalex::bench {
namespace {

constexpr int kMaxEpochs = 14;

std::vector<double> F1PerEpoch(const data::Split& split,
                               float learning_rate) {
  core::ExtractorConfig config =
      DefaultExtractorConfig(Corpus::kSustainabilityGoals);
  config.epochs = kMaxEpochs;
  config.learning_rate = learning_rate;
  core::DetailExtractor extractor(config);

  std::vector<double> f1_per_epoch;
  GOALEX_CHECK_OK(extractor.Train(
      split.train, [&](const core::EpochStats& stats) {
        (void)stats;
        std::vector<data::DetailRecord> predictions =
            extractor.ExtractAll(split.test);
        f1_per_epoch.push_back(
            Evaluate(split.test, predictions,
                     Corpus::kSustainabilityGoals)
                .f1);
      }));
  return f1_per_epoch;
}

void Run() {
  std::printf(
      "Figure 4 (effect of epochs and learning rate): F1 on the "
      "Sustainability Goals test set after each epoch\n"
      "(nominal paper learning rates; effective rate = nominal x %.0f for "
      "the scaled from-scratch model, see DESIGN.md)\n\n",
      DefaultExtractorConfig(Corpus::kSustainabilityGoals)
          .learning_rate_scale);

  const float rates[] = {1e-5f, 5e-5f, 1e-4f, 5e-4f};
  data::Split split = MakeSplit(Corpus::kSustainabilityGoals, 0);

  std::vector<std::string> header = {"Epoch"};
  header.push_back("lr=1e-5");
  header.push_back("lr=5e-5");
  header.push_back("lr=1e-4");
  header.push_back("lr=5e-4");
  eval::TextTable table(header);

  std::vector<std::vector<double>> curves;
  for (float rate : rates) curves.push_back(F1PerEpoch(split, rate));

  for (int epoch = 0; epoch < kMaxEpochs; ++epoch) {
    std::vector<std::string> row = {std::to_string(epoch + 1)};
    for (const std::vector<double>& curve : curves) {
      row.push_back(FormatDouble(curve[static_cast<size_t>(epoch)], 3));
    }
    table.AddRow(std::move(row));
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper reference: lr 5e-5 reaches its highest F1 in ~10 epochs; "
      "epochs/learning rate in their typical ranges do not change "
      "convergence much, while extreme rates underperform.\n");
}

}  // namespace
}  // namespace goalex::bench

int main() {
  goalex::bench::Run();
  return 0;
}
