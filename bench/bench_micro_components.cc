// Google-benchmark microbenchmarks for the performance-critical components:
// tokenizers, weak labeling, tensor kernels, transformer forward/backward,
// CRF training/decoding, and the detection featurizer.
#include <benchmark/benchmark.h>

#include "bpe/bpe_tokenizer.h"
#include "common/rng.h"
#include "crf/crf.h"
#include "crf/features.h"
#include "data/generator.h"
#include "goalspotter/detector.h"
#include "labels/iob.h"
#include "nn/adam.h"
#include "nn/transformer.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "text/normalizer.h"
#include "text/word_tokenizer.h"
#include "weaksup/weak_labeler.h"

namespace goalex {
namespace {

const char* kSentence =
    "As part of The Climate Pledge, we are committed to reducing absolute "
    "Scope 1 emissions by 62.1% by the end of 2035 against a 2017 baseline "
    "across all our operations.";

std::vector<std::string> Corpus() {
  data::SustainabilityGoalsConfig config;
  config.objective_count = 400;
  std::vector<std::string> out;
  for (const data::Objective& o :
       data::GenerateSustainabilityGoals(config)) {
    out.push_back(o.text);
  }
  return out;
}

void BM_Normalize(benchmark::State& state) {
  std::string noisy = "  Reduce\xE2\x80\x93 emissions\xE2\x80\xA6 by "
                      "20\xC2\xA0% \xE2\x80\x9Cnow\xE2\x80\x9D  ";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::Normalize(noisy));
  }
}
BENCHMARK(BM_Normalize);

void BM_WordTokenize(benchmark::State& state) {
  text::WordTokenizer tokenizer;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(kSentence));
  }
}
BENCHMARK(BM_WordTokenize);

void BM_BpeTrain(benchmark::State& state) {
  std::vector<std::string> corpus = Corpus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bpe::BpeModel::Train(corpus, static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_BpeTrain)->Arg(500)->Arg(2600);

void BM_BpeEncode(benchmark::State& state) {
  bpe::BpeModel model = bpe::BpeModel::Train(Corpus(), 2600);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Encode(kSentence));
  }
}
BENCHMARK(BM_BpeEncode);

void BM_WeakLabeling(benchmark::State& state) {
  labels::LabelCatalog catalog(data::SustainabilityGoalKinds());
  weaksup::WeakLabeler labeler(&catalog);
  data::Objective objective;
  objective.text = kSentence;
  objective.annotations = {{"Action", "reducing"},
                           {"Amount", "62.1%"},
                           {"Qualifier", "absolute Scope 1 emissions"},
                           {"Baseline", "2017"},
                           {"Deadline", "2035"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(labeler.Label(objective));
  }
}
BENCHMARK(BM_WeakLabeling);

void BM_Gemm(benchmark::State& state) {
  int64_t n = state.range(0);
  std::vector<float> a(n * n, 0.5f), b(n * n, 0.25f), c(n * n);
  for (auto _ : state) {
    tensor::Gemm(a.data(), b.data(), c.data(), n, n, n, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_TransformerForward(benchmark::State& state) {
  Rng rng(1);
  nn::TransformerConfig config;
  config.vocab_size = 3000;
  config.max_seq_len = 96;
  config.d_model = 64;
  config.heads = 4;
  config.layers = 2;
  config.ffn_dim = 128;
  config.dropout = 0.0f;
  nn::TokenClassifier model(config, 11, rng);
  std::vector<int32_t> ids(static_cast<size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(ids));
  }
}
BENCHMARK(BM_TransformerForward)->Arg(16)->Arg(32)->Arg(64);

void BM_TransformerTrainStep(benchmark::State& state) {
  Rng rng(1);
  nn::TransformerConfig config;
  config.vocab_size = 3000;
  config.max_seq_len = 96;
  config.d_model = 64;
  config.heads = 4;
  config.layers = 2;
  config.ffn_dim = 128;
  nn::TokenClassifier model(config, 11, rng);
  nn::Adam optimizer(model.Parameters(), nn::AdamOptions());
  std::vector<int32_t> ids(32, 42);
  std::vector<int32_t> targets(32, 0);
  Rng train_rng(2);
  for (auto _ : state) {
    tensor::Var loss = model.ForwardLoss(ids, targets, train_rng);
    tensor::Backward(loss);
    optimizer.Step();
  }
}
BENCHMARK(BM_TransformerTrainStep);

void BM_CrfFeatureExtraction(benchmark::State& state) {
  text::WordTokenizer tokenizer;
  std::vector<std::string> words = tokenizer.TokenizeToStrings(kSentence);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crf::ExtractFeatures(words));
  }
}
BENCHMARK(BM_CrfFeatureExtraction);

void BM_CrfViterbi(benchmark::State& state) {
  labels::LabelCatalog catalog(data::SustainabilityGoalKinds());
  crf::LinearChainCrf model(catalog.label_count());
  text::WordTokenizer tokenizer;
  std::vector<std::string> words = tokenizer.TokenizeToStrings(kSentence);
  std::vector<std::vector<uint32_t>> features = crf::ExtractFeatures(words);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(features));
  }
}
BENCHMARK(BM_CrfViterbi);

void BM_DetectorScore(benchmark::State& state) {
  goalspotter::ObjectiveDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Score(kSentence));
  }
}
BENCHMARK(BM_DetectorScore);

}  // namespace
}  // namespace goalex

BENCHMARK_MAIN();
