// Ablation of the CRF baseline's feature template: the Table 4 baseline
// uses the basic template (lexical + orthographic features); this bench
// additionally evaluates the contextual template (neighbor identities and
// bigrams) on both corpora. Documents how much of the CRF's synthetic-data
// performance comes from context features — and why the CRF baseline is
// stronger here than on the paper's real-world corpora (see
// EXPERIMENTS.md).
#include <cstdio>

#include "bench/harness.h"
#include "common/string_util.h"
#include "crf/crf.h"
#include "crf/features.h"
#include "eval/table.h"
#include "labels/iob.h"
#include "text/normalizer.h"
#include "text/word_tokenizer.h"
#include "weaksup/weak_labeler.h"

namespace goalex::bench {
namespace {

eval::Prf RunCrfWithTemplate(const data::Split& split, Corpus corpus,
                             crf::FeatureTemplate feature_template) {
  labels::LabelCatalog catalog(CorpusKinds(corpus));
  weaksup::WeakLabeler labeler(&catalog);
  text::WordTokenizer tokenizer;

  std::vector<crf::CrfInstance> train_instances;
  for (const data::Objective& objective : split.train) {
    data::Objective normalized = objective;
    normalized.text = text::Normalize(objective.text);
    for (data::Annotation& a : normalized.annotations) {
      a.value = text::Normalize(a.value);
    }
    weaksup::WeakLabeling labeling = labeler.Label(normalized);
    if (labeling.tokens.empty()) continue;
    std::vector<std::string> words;
    for (const text::Token& t : labeling.tokens) words.push_back(t.text);
    crf::CrfInstance instance;
    instance.features = crf::ExtractFeatures(words, feature_template);
    instance.labels = labeling.label_ids;
    train_instances.push_back(std::move(instance));
  }
  crf::LinearChainCrf model(catalog.label_count());
  model.Train(train_instances, crf::CrfOptions());

  std::vector<data::DetailRecord> predictions;
  for (const data::Objective& objective : split.test) {
    std::string normalized = text::Normalize(objective.text);
    std::vector<text::Token> tokens = tokenizer.Tokenize(normalized);
    data::DetailRecord record;
    record.objective_id = objective.id;
    if (!tokens.empty()) {
      std::vector<std::string> words;
      for (const text::Token& t : tokens) words.push_back(t.text);
      std::vector<labels::LabelId> predicted =
          model.Predict(crf::ExtractFeatures(words, feature_template));
      for (const labels::Span& span : catalog.DecodeSpans(predicted)) {
        const std::string& kind =
            catalog.kinds()[static_cast<size_t>(span.kind)];
        if (record.fields.count(kind) > 0) continue;
        record.fields[kind] = normalized.substr(
            tokens[span.begin].begin,
            tokens[span.end - 1].end - tokens[span.begin].begin);
      }
    }
    predictions.push_back(std::move(record));
  }
  return Evaluate(split.test, predictions, corpus);
}

void Run() {
  std::printf("Ablation: CRF feature template (basic = Table 4 baseline; "
              "contextual adds neighbor/bigram features)\n\n");
  const int runs = RunCount();
  eval::TextTable table({"Dataset", "Template", "P", "R", "F"});
  for (Corpus corpus :
       {Corpus::kNetZeroFacts, Corpus::kSustainabilityGoals}) {
    for (crf::FeatureTemplate feature_template :
         {crf::FeatureTemplate::kBasic, crf::FeatureTemplate::kContextual}) {
      double p = 0, r = 0, f = 0;
      for (int run = 0; run < runs; ++run) {
        data::Split split = MakeSplit(corpus, static_cast<uint64_t>(run));
        eval::Prf prf = RunCrfWithTemplate(split, corpus, feature_template);
        p += prf.precision;
        r += prf.recall;
        f += prf.f1;
      }
      table.AddRow({CorpusName(corpus),
                    feature_template == crf::FeatureTemplate::kBasic
                        ? "basic"
                        : "contextual",
                    FormatDouble(p / runs, 2), FormatDouble(r / runs, 2),
                    FormatDouble(f / runs, 2)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
}

}  // namespace
}  // namespace goalex::bench

int main() {
  goalex::bench::Run();
  return 0;
}
