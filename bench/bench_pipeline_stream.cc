// Streaming-ingest benchmark: sustained docs/sec from a timestamped
// report feed through the full corpus-to-dashboard path — detection,
// heuristic detail extraction, SDG labeling, versioned upsert — on the
// exec-graph pipeline (per-document work fans out across workers, applies
// land in feed order).
//
// Three phases over the same generated multi-year feed:
//
//   1. serial   — pipeline with parallel=false; the baseline.
//   2. parallel — exec-graph path; the headline docs/sec number. The
//                 resulting dashboard export must be byte-identical to
//                 the serial one.
//   3. replay   — the identical feed again into the parallel database;
//                 every upsert must land unchanged (dedup correctness)
//                 and the export must not move a byte.
//
// `--smoke` shrinks the feed for CI and enforces a docs/sec floor plus
// the dedup CHECKs. GOALEX_THREADS sets the worker fan-out;
// GOALEX_METRICS=summary prints the pipeline.* drift gauges at the end.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/check.h"
#include "core/database.h"
#include "data/stream.h"
#include "eval/table.h"
#include "eval/timer.h"
#include "pipeline/stream_pipeline.h"
#include "runtime/thread_pool.h"

namespace goalex::bench {
namespace {

int PipelineThreads() {
  const char* env = std::getenv("GOALEX_THREADS");
  if (env != nullptr) {
    int threads = std::atoi(env);
    if (threads > 0) return threads;
  }
  return runtime::ThreadPool::DefaultThreadCount();
}

core::DbOptions StreamDbOptions() {
  core::DbOptions options;
  options.track_upserts = true;
  options.background_seal = false;
  return options;
}

std::string Fmt(double v, int precision) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
  return std::string(buffer);
}

struct PhaseReport {
  std::string name;
  pipeline::StreamStats stats;
  double seconds = 0.0;

  double DocsPerSec() const {
    return seconds > 0.0 ? static_cast<double>(stats.documents) / seconds
                         : 0.0;
  }
};

PhaseReport RunPhase(const std::string& name, core::ObjectiveDatabase* db,
                     const std::vector<data::TimedDocument>& documents,
                     bool parallel, int workers) {
  pipeline::StreamPipelineOptions options;
  options.parallel = parallel;
  options.workers = workers;
  // Run real detection on every block (the feed's labels are ground
  // truth, not something a deployed ingest gets to see).
  options.trust_feed_labels = false;
  pipeline::StreamPipeline pipe(db, pipeline::HeuristicStages(), options);
  PhaseReport report;
  report.name = name;
  eval::Timer timer;
  report.stats = pipe.Process(documents);
  report.seconds = timer.Seconds();
  std::printf(
      "%-8s %5lld docs %6lld blocks -> %5lld objectives "
      "(%lld ins, %lld upd, %lld unch, %lld abandoned) in %.3f s "
      "= %.0f docs/s; unmatched %.1f%%, unknown-kind %.1f%%\n",
      name.c_str(), static_cast<long long>(report.stats.documents),
      static_cast<long long>(report.stats.blocks),
      static_cast<long long>(report.stats.objectives),
      static_cast<long long>(report.stats.inserted),
      static_cast<long long>(report.stats.updated),
      static_cast<long long>(report.stats.unchanged),
      static_cast<long long>(report.stats.abandoned), report.seconds,
      report.DocsPerSec(), 100.0 * report.stats.unmatched_rate(),
      100.0 * report.stats.unknown_kind_rate());
  return report;
}

int Run(bool smoke) {
  const int workers = PipelineThreads();
  std::printf("Streaming ingest benchmark: feed -> dashboard upserts\n");
  std::printf("workers: %d%s\n\n", workers, smoke ? " (smoke mode)" : "");

  data::ReportStreamConfig config;
  config.initial_companies = smoke ? 6 : 12;
  config.years = smoke ? 4 : 8;
  config.initial_targets_per_company = smoke ? 5 : 8;
  config.noise_blocks_per_report = smoke ? 6 : 12;
  config.seed = 20260808;
  data::StreamTruth truth;
  std::vector<data::TimedDocument> documents =
      data::GenerateReportStream(config, &truth);
  std::printf("feed: %d documents, %zu unique targets, %d restatements, "
              "%d abandonments\n\n",
              truth.total_documents, truth.unique_targets(),
              truth.restatements, truth.abandonments);

  const std::vector<std::string> export_kinds = {
      "Action", "Amount", "Qualifier", "Deadline",
      core::kVersionField, pipeline::kStatusField, pipeline::kSdgField};

  core::ObjectiveDatabase serial_db(8, StreamDbOptions());
  PhaseReport serial =
      RunPhase("serial", &serial_db, documents, /*parallel=*/false, workers);

  core::ObjectiveDatabase parallel_db(8, StreamDbOptions());
  PhaseReport parallel = RunPhase("parallel", &parallel_db, documents,
                                  /*parallel=*/true, workers);

  const std::string serial_csv = serial_db.ExportCsv(export_kinds);
  const std::string parallel_csv = parallel_db.ExportCsv(export_kinds);
  GOALEX_CHECK_MSG(serial_csv == parallel_csv,
                   "serial and parallel ingest produced different exports");

  PhaseReport replay = RunPhase("replay", &parallel_db, documents,
                                /*parallel=*/true, workers);
  GOALEX_CHECK_MSG(replay.stats.inserted == 0 && replay.stats.updated == 0,
                   "feed replay was not idempotent: "
                       << replay.stats.inserted << " inserts, "
                       << replay.stats.updated << " updates");
  GOALEX_CHECK_MSG(parallel_db.ExportCsv(export_kinds) == parallel_csv,
                   "feed replay moved the dashboard export");
  // Real detection may pass noise blocks (false positives add rows), but
  // every true target must land exactly once.
  GOALEX_CHECK_MSG(
      parallel_db.live_size() >= truth.unique_targets(),
      "live rows " << parallel_db.live_size() << " < unique targets "
                   << truth.unique_targets());
  std::printf("live rows: %zu (%zu true targets + %zu detected-noise "
              "extras)\n",
              parallel_db.live_size(), truth.unique_targets(),
              parallel_db.live_size() - truth.unique_targets());

  std::printf("\n");
  eval::TextTable table({"Phase", "Docs", "Objectives", "Docs/s",
                         "Unmatched %", "Unknown-kind %"});
  for (const PhaseReport* report : {&serial, &parallel, &replay}) {
    table.AddRow({report->name, std::to_string(report->stats.documents),
                  std::to_string(report->stats.objectives),
                  Fmt(report->DocsPerSec(), 0),
                  Fmt(100.0 * report->stats.unmatched_rate(), 1),
                  Fmt(100.0 * report->stats.unknown_kind_rate(), 1)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("sustained ingest (exec-graph path): %.0f docs/s over %lld "
              "documents\n\n",
              parallel.DocsPerSec(),
              static_cast<long long>(parallel.stats.documents));

  if (smoke) {
    // Floor sized for a loaded single-core CI box; a healthy build does
    // thousands of docs/sec.
    GOALEX_CHECK_MSG(parallel.DocsPerSec() >= 25.0,
                     "smoke ingest too slow: " << parallel.DocsPerSec()
                                               << " docs/s");
  }

  EmitMetricsSnapshot("pipeline");
  return 0;
}

}  // namespace
}  // namespace goalex::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return goalex::bench::Run(smoke);
}
