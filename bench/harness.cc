#include "bench/harness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "common/string_util.h"
#include "core/extractor.h"
#include "crf/crf.h"
#include "crf/features.h"
#include "data/generator.h"
#include "eval/timer.h"
#include "labels/iob.h"
#include "llm/llm_extractor.h"
#include "runtime/batch_runner.h"
#include "text/normalizer.h"
#include "text/word_tokenizer.h"
#include "weaksup/weak_labeler.h"

namespace goalex::bench {

const char* CorpusName(Corpus corpus) {
  return corpus == Corpus::kNetZeroFacts ? "NetZeroFacts"
                                         : "Sustainability Goals";
}

const std::vector<std::string>& CorpusKinds(Corpus corpus) {
  return corpus == Corpus::kNetZeroFacts ? data::NetZeroFactsKinds()
                                         : data::SustainabilityGoalKinds();
}

data::Split MakeSplit(Corpus corpus, uint64_t run) {
  if (corpus == Corpus::kNetZeroFacts) {
    data::NetZeroFactsConfig config;
    config.seed += run * 1000;
    return data::TrainTestSplit(data::GenerateNetZeroFacts(config), 0.2,
                                run + 51);
  }
  data::SustainabilityGoalsConfig config;
  config.seed += run * 1000;
  return data::TrainTestSplit(data::GenerateSustainabilityGoals(config), 0.2,
                              run + 51);
}

void MeanResult::Add(const ApproachResult& r) {
  precision += r.prf.precision;
  recall += r.prf.recall;
  f1 += r.prf.f1;
  minutes += r.minutes;
  ++runs;
}

std::vector<std::string> MeanResult::Cells() const {
  GOALEX_CHECK_GT(runs, 0);
  double n = static_cast<double>(runs);
  auto fmt = [&](double v) { return FormatDouble(v / n, 2); };
  std::string time = minutes / n < 1.0 ? "< 1" : FormatDouble(minutes / n, 1);
  return {fmt(precision), fmt(recall), fmt(f1), time};
}

eval::Prf Evaluate(const std::vector<data::Objective>& test,
                   const std::vector<data::DetailRecord>& predictions,
                   Corpus corpus) {
  eval::FieldEvaluator evaluator(CorpusKinds(corpus));
  // Gold annotations compare against extraction from normalized text; the
  // evaluator normalizes whitespace, and the extractor preserves surface
  // forms, so direct comparison is faithful.
  std::vector<data::Objective> normalized = test;
  for (data::Objective& o : normalized) {
    o.text = text::Normalize(o.text);
    for (data::Annotation& a : o.annotations) {
      a.value = text::Normalize(a.value);
    }
  }
  evaluator.AddAll(normalized, predictions);
  return evaluator.Overall();
}

core::ExtractorConfig DefaultExtractorConfig(Corpus corpus) {
  core::ExtractorConfig config;
  config.kinds = CorpusKinds(corpus);
  return config;
}

ApproachResult RunGoalSpotter(const data::Split& split, Corpus corpus,
                              core::ExtractorConfig config) {
  eval::Timer timer;
  core::DetailExtractor extractor(std::move(config));
  GOALEX_CHECK_OK(extractor.Train(split.train));
  std::vector<data::DetailRecord> predictions =
      extractor.ExtractAll(split.test);
  ApproachResult result;
  result.minutes = timer.Minutes();
  result.prf = Evaluate(split.test, predictions, corpus);
  return result;
}

namespace {

// Builds word-level CRF instances from weak-labeled objectives.
std::vector<crf::CrfInstance> BuildCrfInstances(
    const std::vector<data::Objective>& objectives,
    const weaksup::WeakLabeler& labeler) {
  std::vector<crf::CrfInstance> instances;
  instances.reserve(objectives.size());
  for (const data::Objective& objective : objectives) {
    data::Objective normalized = objective;
    normalized.text = text::Normalize(objective.text);
    for (data::Annotation& a : normalized.annotations) {
      a.value = text::Normalize(a.value);
    }
    weaksup::WeakLabeling labeling = labeler.Label(normalized);
    if (labeling.tokens.empty()) continue;
    crf::CrfInstance instance;
    std::vector<std::string> words;
    for (const text::Token& t : labeling.tokens) words.push_back(t.text);
    instance.features =
        crf::ExtractFeatures(words, crf::FeatureTemplate::kBasic);
    instance.labels = labeling.label_ids;
    instances.push_back(std::move(instance));
  }
  return instances;
}

}  // namespace

ApproachResult RunCrfBaseline(const data::Split& split, Corpus corpus) {
  labels::LabelCatalog catalog(CorpusKinds(corpus));
  weaksup::WeakLabeler labeler(&catalog);

  eval::Timer timer;
  std::vector<crf::CrfInstance> train_instances =
      BuildCrfInstances(split.train, labeler);
  crf::LinearChainCrf model(catalog.label_count());
  model.Train(train_instances, crf::CrfOptions());

  // Per-example evaluation fan-out: CRF Viterbi decoding is const and
  // self-contained, so each test objective is predicted on a worker;
  // prediction i always belongs to test objective i.
  text::WordTokenizer tokenizer;
  runtime::BatchRunner runner(/*num_threads=*/0);
  std::vector<data::DetailRecord> predictions =
      runner.Map<data::DetailRecord>(split.test.size(), [&](size_t idx) {
        const data::Objective& objective = split.test[idx];
        std::string normalized = text::Normalize(objective.text);
        std::vector<text::Token> tokens = tokenizer.Tokenize(normalized);
        data::DetailRecord record;
        record.objective_id = objective.id;
        record.objective_text = objective.text;
        if (!tokens.empty()) {
          std::vector<std::string> words;
          for (const text::Token& t : tokens) words.push_back(t.text);
          std::vector<labels::LabelId> predicted = model.Predict(
              crf::ExtractFeatures(words, crf::FeatureTemplate::kBasic));
          for (const labels::Span& span : catalog.DecodeSpans(predicted)) {
            const std::string& kind =
                catalog.kinds()[static_cast<size_t>(span.kind)];
            if (record.fields.count(kind) > 0) continue;
            size_t begin = tokens[span.begin].begin;
            size_t end = tokens[span.end - 1].end;
            record.fields[kind] = normalized.substr(begin, end - begin);
          }
        }
        return record;
      });

  ApproachResult result;
  result.minutes = timer.Minutes();
  result.prf = Evaluate(split.test, predictions, corpus);
  return result;
}

ApproachResult RunPromptingBaseline(const data::Split& split, Corpus corpus,
                                    bool few_shot, uint64_t seed) {
  llm::PromptingBaseline baseline(CorpusKinds(corpus), few_shot, seed);
  if (few_shot) {
    // Three in-context examples, as in the paper [32]. Like a practitioner
    // would, pick stylistically diverse examples: one with a "will ..."
    // action, one with a gerund action, one plain — so the prompt teaches
    // the dataset's annotation conventions.
    const data::Objective* with_will = nullptr;
    const data::Objective* with_gerund = nullptr;
    const data::Objective* plain = nullptr;
    for (const data::Objective& o : split.train) {
      auto action = o.AnnotationValue("Action");
      if (o.annotations.size() < 2) continue;
      if (action && action->rfind("will ", 0) == 0) {
        if (with_will == nullptr) with_will = &o;
      } else if (action && action->size() > 3 &&
                 action->compare(action->size() - 3, 3, "ing") == 0) {
        if (with_gerund == nullptr) with_gerund = &o;
      } else if (plain == nullptr) {
        plain = &o;
      }
      if (with_will != nullptr && with_gerund != nullptr &&
          plain != nullptr) {
        break;
      }
    }
    std::vector<data::Objective> examples;
    for (const data::Objective* o : {plain, with_will, with_gerund}) {
      if (o != nullptr) examples.push_back(*o);
    }
    // Top up to three examples if a style was absent.
    for (const data::Objective& o : split.train) {
      if (examples.size() >= 3) break;
      bool used = false;
      for (const data::Objective& e : examples) used |= (e.id == o.id);
      if (!used && o.annotations.size() >= 2) examples.push_back(o);
    }
    baseline.SetExamples(examples);
  }
  std::vector<data::DetailRecord> predictions =
      baseline.ExtractAll(split.test);

  ApproachResult result;
  result.minutes = baseline.simulated_seconds() / 60.0;
  result.prf = Evaluate(split.test, predictions, corpus);
  return result;
}

DeployedSystem TrainDeployedSystem(uint64_t seed) {
  DeployedSystem system;

  data::SustainabilityGoalsConfig corpus_config;
  corpus_config.seed += seed;
  std::vector<data::Objective> corpus =
      data::GenerateSustainabilityGoals(corpus_config);

  core::ExtractorConfig extractor_config =
      DefaultExtractorConfig(Corpus::kSustainabilityGoals);
  extractor_config.seed += seed;
  system.extractor =
      std::make_unique<core::DetailExtractor>(extractor_config);
  GOALEX_CHECK_OK(system.extractor->Train(corpus));

  std::vector<goalspotter::LabeledBlock> blocks;
  blocks.reserve(corpus.size() * 2);
  for (const data::Objective& o : corpus) {
    blocks.push_back(goalspotter::LabeledBlock{o.text, true});
  }
  Rng noise_rng(seed + 77);
  for (size_t i = 0; i < corpus.size(); ++i) {
    blocks.push_back(goalspotter::LabeledBlock{
        data::GenerateNoiseSentence(noise_rng), false});
  }
  system.detector = std::make_unique<goalspotter::ObjectiveDetector>();
  system.detector->Train(blocks, goalspotter::DetectorOptions());
  return system;
}

int RunCount() {
  const char* env = std::getenv("GOALEX_RUNS");
  if (env != nullptr) {
    int runs = std::atoi(env);
    if (runs > 0) return runs;
  }
  return 3;
}

void EmitMetricsSnapshot(const std::string& label) {
  const char* format = std::getenv("GOALEX_METRICS");
  if (format != nullptr && std::strcmp(format, "off") == 0) return;
  obs::RegistrySnapshot snapshot = obs::MetricsRegistry::Default().Snapshot();
  if (snapshot.Empty()) return;
  std::printf("=== metrics (%s) ===\n", label.c_str());
  if (format != nullptr && std::strcmp(format, "json") == 0) {
    std::printf("%s\n", obs::ToJson(snapshot).c_str());
  } else if (format != nullptr && std::strcmp(format, "prom") == 0) {
    std::printf("%s", obs::ToPrometheus(snapshot).c_str());
  } else {
    std::printf("%s", obs::ToSummary(snapshot).c_str());
  }
}

}  // namespace goalex::bench
