// Regenerates Figure 4 (target-label panel): per-field F1 of the detail
// extraction system on the Sustainability Goals corpus, together with each
// field's annotation availability. The paper's finding: Action scores
// highest (annotated for 85% of instances), while sparse fields such as
// Baseline (14%) and Deadline (34%) score lower.
#include <cstdio>
#include <map>

#include "bench/harness.h"
#include "common/string_util.h"
#include "core/extractor.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "text/normalizer.h"

namespace goalex::bench {
namespace {

void Run() {
  const int runs = RunCount();
  std::printf(
      "Figure 4 (effect of the target label): per-field F1 on the "
      "Sustainability Goals dataset (mean of %d runs)\n\n",
      runs);

  const std::vector<std::string>& kinds = data::SustainabilityGoalKinds();
  std::map<std::string, double> f1_sum;
  std::map<std::string, int64_t> annotated;
  int64_t total_objectives = 0;

  for (int run = 0; run < runs; ++run) {
    data::Split split =
        MakeSplit(Corpus::kSustainabilityGoals, static_cast<uint64_t>(run));
    core::ExtractorConfig config =
        DefaultExtractorConfig(Corpus::kSustainabilityGoals);
    config.seed += static_cast<uint64_t>(run);
    core::DetailExtractor extractor(config);
    GOALEX_CHECK_OK(extractor.Train(split.train));

    std::vector<data::DetailRecord> predictions =
        extractor.ExtractAll(split.test);
    std::vector<data::Objective> normalized = split.test;
    for (data::Objective& o : normalized) {
      o.text = text::Normalize(o.text);
      for (data::Annotation& a : o.annotations) {
        a.value = text::Normalize(a.value);
      }
    }
    eval::FieldEvaluator evaluator(kinds);
    evaluator.AddAll(normalized, predictions);
    for (const std::string& kind : kinds) {
      f1_sum[kind] += evaluator.ForKind(kind).f1;
    }

    for (const data::Objective& o : split.train) {
      ++total_objectives;
      for (const std::string& kind : kinds) {
        if (o.AnnotationValue(kind)) ++annotated[kind];
      }
    }
    for (const data::Objective& o : split.test) {
      ++total_objectives;
      for (const std::string& kind : kinds) {
        if (o.AnnotationValue(kind)) ++annotated[kind];
      }
    }
  }

  eval::TextTable table({"Target label", "Annotation availability", "F1"});
  for (const std::string& kind : kinds) {
    double availability =
        static_cast<double>(annotated[kind]) / total_objectives;
    table.AddRow({kind, FormatDouble(100.0 * availability, 0) + "%",
                  FormatDouble(f1_sum[kind] / runs, 2)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Paper reference: Action is annotated for 85%% of instances and "
      "scores highest; Baseline (14%%) and Deadline (34%%) are sparser "
      "and score lower.\n");
}

}  // namespace
}  // namespace goalex::bench

int main() {
  goalex::bench::Run();
  return 0;
}
