// Command-line interface to the GoalEx library — the tool a downstream
// user runs without writing C++:
//
//   goalex_cli generate --dataset sg --count 1106 --out corpus.tsv
//   goalex_cli train    --data corpus.tsv --model-dir ./model [--epochs 10]
//                       [--preset roberta|distilroberta|bert|distilbert]
//   goalex_cli extract  --model-dir ./model --text "Reduce waste by 20%."
//   goalex_cli extract  --model-dir ./model --data corpus.tsv --csv out.csv
//   goalex_cli eval     --model-dir ./model --data test.tsv
//
// TSV format: id <TAB> text <TAB> kind=value ... (see data/dataset.h).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "core/database.h"
#include "core/extractor.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "eval/timer.h"
#include "text/normalizer.h"
#include "values/value_normalizer.h"

namespace {

using goalex::Status;

// Minimal flag parser: --key value pairs after the subcommand.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int start) {
  std::map<std::string, std::string> flags;
  for (int i = start; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: goalex_cli <generate|train|extract|eval> [flags]\n"
               "  generate --dataset sg|nzf [--count N] [--seed S] "
               "--out FILE\n"
               "  train    --data FILE --model-dir DIR [--epochs N] "
               "[--preset NAME] [--seed S]\n"
               "  extract  --model-dir DIR (--text T | --data FILE) "
               "[--csv FILE] [--typed 1]\n"
               "  eval     --model-dir DIR --data FILE\n");
  return 2;
}

goalex::StatusOr<goalex::core::ExtractorConfig> LoadConfig(
    const std::string& model_dir) {
  std::ifstream in(model_dir + "/config.txt");
  if (!in) {
    return goalex::NotFoundError("missing config.txt in " + model_dir);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return goalex::core::ExtractorConfig::FromText(buffer.str());
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  std::string dataset = FlagOr(flags, "dataset", "sg");
  std::string out_path = FlagOr(flags, "out", "");
  if (out_path.empty()) return Usage();
  uint64_t seed = std::strtoull(FlagOr(flags, "seed", "42").c_str(),
                                nullptr, 10);

  std::vector<goalex::data::Objective> corpus;
  if (dataset == "sg") {
    goalex::data::SustainabilityGoalsConfig config;
    config.seed = seed;
    size_t count = std::strtoull(
        FlagOr(flags, "count", std::to_string(config.objective_count))
            .c_str(),
        nullptr, 10);
    config.objective_count = count;
    corpus = goalex::data::GenerateSustainabilityGoals(config);
  } else if (dataset == "nzf") {
    goalex::data::NetZeroFactsConfig config;
    config.seed = seed;
    size_t count = std::strtoull(
        FlagOr(flags, "count", std::to_string(config.sentence_count))
            .c_str(),
        nullptr, 10);
    config.sentence_count = count;
    corpus = goalex::data::GenerateNetZeroFacts(config);
  } else {
    return Usage();
  }
  Status status = goalex::data::SaveObjectives(corpus, out_path);
  if (!status.ok()) return Fail(status);
  std::printf("wrote %zu objectives to %s\n", corpus.size(),
              out_path.c_str());
  return 0;
}

int CmdTrain(const std::map<std::string, std::string>& flags) {
  std::string data_path = FlagOr(flags, "data", "");
  std::string model_dir = FlagOr(flags, "model-dir", "");
  if (data_path.empty() || model_dir.empty()) return Usage();

  auto corpus = goalex::data::LoadObjectives(data_path);
  if (!corpus.ok()) return Fail(corpus.status());

  // Schema = union of annotation kinds present in the data.
  std::vector<std::string> kinds;
  for (const goalex::data::Objective& o : *corpus) {
    for (const goalex::data::Annotation& a : o.annotations) {
      bool known = false;
      for (const std::string& k : kinds) known |= (k == a.kind);
      if (!known) kinds.push_back(a.kind);
    }
  }
  if (kinds.empty()) {
    return Fail(goalex::InvalidArgumentError(
        "training data carries no annotations"));
  }

  goalex::core::ExtractorConfig config;
  config.kinds = kinds;
  config.epochs = std::atoi(FlagOr(flags, "epochs", "10").c_str());
  config.seed =
      std::strtoull(FlagOr(flags, "seed", "17").c_str(), nullptr, 10);
  auto preset =
      goalex::core::ParseModelPreset(FlagOr(flags, "preset", "roberta"));
  if (!preset.ok()) return Fail(preset.status());
  config.preset = *preset;

  goalex::core::DetailExtractor extractor(config);
  std::printf("training on %zu objectives (%zu fields, preset %s)...\n",
              corpus->size(), kinds.size(),
              goalex::core::ModelPresetName(config.preset));
  goalex::eval::Timer timer;
  Status status = extractor.Train(
      *corpus, [](const goalex::core::EpochStats& stats) {
        std::printf("  epoch %2d  loss %.4f\n", stats.epoch,
                    stats.mean_train_loss);
      });
  if (!status.ok()) return Fail(status);
  std::printf("trained in %.1f s; weak-label match rate %.3f\n",
              timer.Seconds(), extractor.last_train_stats().MatchRate());

  std::filesystem::create_directories(model_dir);
  status = extractor.Save(model_dir);
  if (!status.ok()) return Fail(status);
  std::printf("model saved to %s\n", model_dir.c_str());
  return 0;
}

void PrintRecord(const goalex::data::DetailRecord& record,
                 const std::vector<std::string>& kinds, bool typed) {
  goalex::eval::TextTable table({"Field", "Value"});
  for (const std::string& kind : kinds) {
    table.AddRow({kind, record.FieldOrEmpty(kind)});
  }
  std::printf("%s", table.Render(60).c_str());
  if (typed) {
    goalex::values::TypedDetails details =
        goalex::values::NormalizeRecord(record);
    std::printf("typed: action_lemma='%s'", details.action_lemma.c_str());
    if (details.amount) {
      std::printf(" amount=%g (%s)", details.amount->magnitude,
                  goalex::values::AmountTypeName(details.amount->type));
    }
    if (details.baseline_year) {
      std::printf(" baseline=%d", *details.baseline_year);
    }
    if (details.deadline_year) {
      std::printf(" deadline=%d", *details.deadline_year);
    }
    std::printf("\n");
  }
}

int CmdExtract(const std::map<std::string, std::string>& flags) {
  std::string model_dir = FlagOr(flags, "model-dir", "");
  if (model_dir.empty()) return Usage();
  auto config = LoadConfig(model_dir);
  if (!config.ok()) return Fail(config.status());
  goalex::core::DetailExtractor extractor(*config);
  Status status = extractor.Load(model_dir);
  if (!status.ok()) return Fail(status);
  bool typed = FlagOr(flags, "typed", "0") == "1";

  std::string text = FlagOr(flags, "text", "");
  if (!text.empty()) {
    goalex::data::Objective objective;
    objective.id = "cli";
    objective.text = text;
    PrintRecord(extractor.Extract(objective), config->kinds, typed);
    return 0;
  }

  std::string data_path = FlagOr(flags, "data", "");
  if (data_path.empty()) return Usage();
  auto corpus = goalex::data::LoadObjectives(data_path);
  if (!corpus.ok()) return Fail(corpus.status());

  goalex::core::ObjectiveDatabase database;
  for (const goalex::data::Objective& objective : *corpus) {
    database.Insert(extractor.Extract(objective), objective.company,
                    objective.document, objective.page);
  }
  std::string csv_path = FlagOr(flags, "csv", "");
  std::string csv = database.ExportCsv(config->kinds);
  if (csv_path.empty()) {
    std::printf("%s", csv.c_str());
  } else {
    std::ofstream out(csv_path, std::ios::trunc);
    out << csv;
    std::printf("wrote %zu rows to %s\n", database.size(),
                csv_path.c_str());
  }
  return 0;
}

int CmdEval(const std::map<std::string, std::string>& flags) {
  std::string model_dir = FlagOr(flags, "model-dir", "");
  std::string data_path = FlagOr(flags, "data", "");
  if (model_dir.empty() || data_path.empty()) return Usage();

  auto config = LoadConfig(model_dir);
  if (!config.ok()) return Fail(config.status());
  goalex::core::DetailExtractor extractor(*config);
  Status status = extractor.Load(model_dir);
  if (!status.ok()) return Fail(status);

  auto corpus = goalex::data::LoadObjectives(data_path);
  if (!corpus.ok()) return Fail(corpus.status());

  goalex::eval::FieldEvaluator evaluator(config->kinds);
  for (const goalex::data::Objective& objective : *corpus) {
    goalex::data::Objective normalized = objective;
    normalized.text = goalex::text::Normalize(objective.text);
    for (goalex::data::Annotation& a : normalized.annotations) {
      a.value = goalex::text::Normalize(a.value);
    }
    evaluator.Add(normalized, extractor.Extract(objective));
  }
  goalex::eval::TextTable table({"Field", "P", "R", "F1"});
  for (const std::string& kind : config->kinds) {
    goalex::eval::Prf prf = evaluator.ForKind(kind);
    table.AddRow({kind, goalex::FormatDouble(prf.precision, 3),
                  goalex::FormatDouble(prf.recall, 3),
                  goalex::FormatDouble(prf.f1, 3)});
  }
  goalex::eval::Prf overall = evaluator.Overall();
  table.AddRow({"<overall>", goalex::FormatDouble(overall.precision, 3),
                goalex::FormatDouble(overall.recall, 3),
                goalex::FormatDouble(overall.f1, 3)});
  std::printf("%s", table.Render().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::map<std::string, std::string> flags = ParseFlags(argc, argv, 2);
  std::string command = argv[1];
  if (command == "generate") return CmdGenerate(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "extract") return CmdExtract(flags);
  if (command == "eval") return CmdEval(flags);
  return Usage();
}
