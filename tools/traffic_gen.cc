// Synthetic serving-traffic generator for the extraction service.
//
//   traffic_gen [--rate QPS] [--duration S] [--seed N]
//               [--burst-period S] [--burst-duration S] [--burst-mult X]
//               [--interactive-fraction F]
//               [--short-weight W] [--medium-weight W] [--long-weight W]
//               [--format tsv|summary] [--out FILE]
//
// Emits one request per line (TSV: arrival_s, priority, size class, id,
// text) so a trace can be inspected, diffed, or replayed elsewhere, plus
// an aggregate summary on stderr. Arrivals are open-loop Poisson with
// optional burst episodes; the trace is deterministic per seed.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <ostream>
#include <string>

#include "serve/workload.h"

namespace {

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    flags[argv[i] + 2] = argv[i + 1];
  }
  return flags;
}

double FlagOr(const std::map<std::string, std::string>& flags,
              const std::string& key, double fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : std::stod(it->second);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: traffic_gen [--rate QPS] [--duration S] [--seed N]\n"
      "                   [--burst-period S] [--burst-duration S]\n"
      "                   [--burst-mult X] [--interactive-fraction F]\n"
      "                   [--short-weight W] [--medium-weight W]\n"
      "                   [--long-weight W] [--format tsv|summary]\n"
      "                   [--out FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) return Usage();
  }
  auto flags = ParseFlags(argc, argv);

  goalex::serve::TrafficConfig config;
  config.rate_qps = FlagOr(flags, "rate", config.rate_qps);
  config.duration_s = FlagOr(flags, "duration", config.duration_s);
  config.seed = static_cast<uint64_t>(
      FlagOr(flags, "seed", static_cast<double>(config.seed)));
  config.burst_period_s =
      FlagOr(flags, "burst-period", config.burst_period_s);
  config.burst_duration_s =
      FlagOr(flags, "burst-duration", config.burst_duration_s);
  config.burst_multiplier = FlagOr(flags, "burst-mult",
                                   config.burst_multiplier);
  config.interactive_fraction =
      FlagOr(flags, "interactive-fraction", config.interactive_fraction);
  config.short_weight = FlagOr(flags, "short-weight", config.short_weight);
  config.medium_weight =
      FlagOr(flags, "medium-weight", config.medium_weight);
  config.long_weight = FlagOr(flags, "long-weight", config.long_weight);
  if (config.rate_qps <= 0.0 || config.duration_s <= 0.0) {
    std::fprintf(stderr, "error: --rate and --duration must be > 0\n");
    return 1;
  }

  const auto trace = goalex::serve::GenerateTrace(config);

  std::string format = flags.count("format") ? flags["format"] : "tsv";
  if (format == "tsv") {
    std::ofstream file;
    std::ostream* out = &std::cout;
    if (flags.count("out")) {
      file.open(flags["out"]);
      if (!file) {
        std::fprintf(stderr, "error: cannot open %s\n",
                     flags["out"].c_str());
        return 1;
      }
      out = &file;
    }
    for (const auto& request : trace) {
      char arrival[32];
      std::snprintf(arrival, sizeof(arrival), "%.6f", request.arrival_s);
      (*out) << arrival << '\t'
             << goalex::serve::PriorityName(request.priority) << '\t'
             << goalex::serve::SizeClassName(request.size_class) << '\t'
             << request.objective.id << '\t' << request.objective.text
             << '\n';
    }
  } else if (format != "summary") {
    return Usage();
  }

  size_t interactive = 0;
  size_t by_size[3] = {0, 0, 0};
  for (const auto& request : trace) {
    if (request.priority == goalex::serve::Priority::kInteractive) {
      ++interactive;
    }
    ++by_size[static_cast<size_t>(request.size_class)];
  }
  double span = trace.empty() ? 0.0 : trace.back().arrival_s;
  std::fprintf(stderr,
               "trace: %zu requests over %.3fs (%.1f qps offered, "
               "%.1f qps nominal)\n"
               "  interactive %zu / bulk %zu; short %zu / medium %zu / "
               "long %zu\n",
               trace.size(), span,
               span > 0.0 ? static_cast<double>(trace.size()) / span : 0.0,
               config.rate_qps, interactive, trace.size() - interactive,
               by_size[0], by_size[1], by_size[2]);
  return 0;
}
