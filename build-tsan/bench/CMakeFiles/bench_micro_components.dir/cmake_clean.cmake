file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_components.dir/bench_micro_components.cc.o"
  "CMakeFiles/bench_micro_components.dir/bench_micro_components.cc.o.d"
  "bench_micro_components"
  "bench_micro_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
