file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_top_objectives.dir/bench_table6_top_objectives.cc.o"
  "CMakeFiles/bench_table6_top_objectives.dir/bench_table6_top_objectives.cc.o.d"
  "bench_table6_top_objectives"
  "bench_table6_top_objectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_top_objectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
