# Empty compiler generated dependencies file for bench_table6_top_objectives.
# This may be replaced when dependencies are built.
