file(REMOVE_RECURSE
  "CMakeFiles/bench_figure4_hyperparams.dir/bench_figure4_hyperparams.cc.o"
  "CMakeFiles/bench_figure4_hyperparams.dir/bench_figure4_hyperparams.cc.o.d"
  "bench_figure4_hyperparams"
  "bench_figure4_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure4_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
