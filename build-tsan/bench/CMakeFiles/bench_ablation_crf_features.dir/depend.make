# Empty dependencies file for bench_ablation_crf_features.
# This may be replaced when dependencies are built.
