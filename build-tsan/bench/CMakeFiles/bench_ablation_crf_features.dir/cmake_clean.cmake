file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_crf_features.dir/bench_ablation_crf_features.cc.o"
  "CMakeFiles/bench_ablation_crf_features.dir/bench_ablation_crf_features.cc.o.d"
  "bench_ablation_crf_features"
  "bench_ablation_crf_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_crf_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
