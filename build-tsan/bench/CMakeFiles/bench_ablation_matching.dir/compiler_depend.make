# Empty compiler generated dependencies file for bench_ablation_matching.
# This may be replaced when dependencies are built.
