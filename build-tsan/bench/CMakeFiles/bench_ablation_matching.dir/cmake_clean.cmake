file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_matching.dir/bench_ablation_matching.cc.o"
  "CMakeFiles/bench_ablation_matching.dir/bench_ablation_matching.cc.o.d"
  "bench_ablation_matching"
  "bench_ablation_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
