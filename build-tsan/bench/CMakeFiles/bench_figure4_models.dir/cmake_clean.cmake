file(REMOVE_RECURSE
  "CMakeFiles/bench_figure4_models.dir/bench_figure4_models.cc.o"
  "CMakeFiles/bench_figure4_models.dir/bench_figure4_models.cc.o.d"
  "bench_figure4_models"
  "bench_figure4_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure4_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
