file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_comparison.dir/bench_table4_comparison.cc.o"
  "CMakeFiles/bench_table4_comparison.dir/bench_table4_comparison.cc.o.d"
  "bench_table4_comparison"
  "bench_table4_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
