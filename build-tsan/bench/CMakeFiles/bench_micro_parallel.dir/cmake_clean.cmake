file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_parallel.dir/bench_micro_parallel.cc.o"
  "CMakeFiles/bench_micro_parallel.dir/bench_micro_parallel.cc.o.d"
  "bench_micro_parallel"
  "bench_micro_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
