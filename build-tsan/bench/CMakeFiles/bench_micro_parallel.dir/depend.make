# Empty dependencies file for bench_micro_parallel.
# This may be replaced when dependencies are built.
