
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_segmentation.cc" "bench/CMakeFiles/bench_ablation_segmentation.dir/bench_ablation_segmentation.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_segmentation.dir/bench_ablation_segmentation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/bench/CMakeFiles/goalex_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/goalspotter/CMakeFiles/goalex_goalspotter.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/goalex_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/nn/CMakeFiles/goalex_nn.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tensor/CMakeFiles/goalex_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/segment/CMakeFiles/goalex_segment.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/weaksup/CMakeFiles/goalex_weaksup.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/bpe/CMakeFiles/goalex_bpe.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/runtime/CMakeFiles/goalex_runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/crf/CMakeFiles/goalex_crf.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/llm/CMakeFiles/goalex_llm.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/eval/CMakeFiles/goalex_eval.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/labels/CMakeFiles/goalex_labels.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/goalex_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/text/CMakeFiles/goalex_text.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/goalex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
