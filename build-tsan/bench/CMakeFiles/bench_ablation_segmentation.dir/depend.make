# Empty dependencies file for bench_ablation_segmentation.
# This may be replaced when dependencies are built.
