file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_segmentation.dir/bench_ablation_segmentation.cc.o"
  "CMakeFiles/bench_ablation_segmentation.dir/bench_ablation_segmentation.cc.o.d"
  "bench_ablation_segmentation"
  "bench_ablation_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
