file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_deployment.dir/bench_table5_deployment.cc.o"
  "CMakeFiles/bench_table5_deployment.dir/bench_table5_deployment.cc.o.d"
  "bench_table5_deployment"
  "bench_table5_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
