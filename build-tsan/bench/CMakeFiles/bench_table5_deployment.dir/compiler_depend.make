# Empty compiler generated dependencies file for bench_table5_deployment.
# This may be replaced when dependencies are built.
