file(REMOVE_RECURSE
  "../lib/libgoalex_bench_harness.a"
)
