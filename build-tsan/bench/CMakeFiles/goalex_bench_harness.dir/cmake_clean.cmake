file(REMOVE_RECURSE
  "../lib/libgoalex_bench_harness.a"
  "../lib/libgoalex_bench_harness.pdb"
  "CMakeFiles/goalex_bench_harness.dir/harness.cc.o"
  "CMakeFiles/goalex_bench_harness.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalex_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
