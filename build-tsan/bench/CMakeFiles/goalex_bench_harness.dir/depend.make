# Empty dependencies file for goalex_bench_harness.
# This may be replaced when dependencies are built.
