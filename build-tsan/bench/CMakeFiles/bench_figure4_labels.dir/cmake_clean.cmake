file(REMOVE_RECURSE
  "CMakeFiles/bench_figure4_labels.dir/bench_figure4_labels.cc.o"
  "CMakeFiles/bench_figure4_labels.dir/bench_figure4_labels.cc.o.d"
  "bench_figure4_labels"
  "bench_figure4_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure4_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
