# Empty compiler generated dependencies file for bench_figure4_labels.
# This may be replaced when dependencies are built.
