file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_single_report.dir/bench_table7_single_report.cc.o"
  "CMakeFiles/bench_table7_single_report.dir/bench_table7_single_report.cc.o.d"
  "bench_table7_single_report"
  "bench_table7_single_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_single_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
