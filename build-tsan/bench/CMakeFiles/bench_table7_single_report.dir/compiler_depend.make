# Empty compiler generated dependencies file for bench_table7_single_report.
# This may be replaced when dependencies are built.
