# Empty compiler generated dependencies file for goalex_cli.
# This may be replaced when dependencies are built.
