file(REMOVE_RECURSE
  "CMakeFiles/goalex_cli.dir/goalex_cli.cc.o"
  "CMakeFiles/goalex_cli.dir/goalex_cli.cc.o.d"
  "goalex_cli"
  "goalex_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalex_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
