file(REMOVE_RECURSE
  "CMakeFiles/sentence_splitter_test.dir/sentence_splitter_test.cc.o"
  "CMakeFiles/sentence_splitter_test.dir/sentence_splitter_test.cc.o.d"
  "sentence_splitter_test"
  "sentence_splitter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentence_splitter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
