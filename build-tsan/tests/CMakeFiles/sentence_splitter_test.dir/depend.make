# Empty dependencies file for sentence_splitter_test.
# This may be replaced when dependencies are built.
