# Empty dependencies file for value_normalizer_test.
# This may be replaced when dependencies are built.
