
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/value_normalizer_test.cc" "tests/CMakeFiles/value_normalizer_test.dir/value_normalizer_test.cc.o" "gcc" "tests/CMakeFiles/value_normalizer_test.dir/value_normalizer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/values/CMakeFiles/goalex_values.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/goalex_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/goalex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
