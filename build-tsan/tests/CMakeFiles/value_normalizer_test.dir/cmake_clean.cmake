file(REMOVE_RECURSE
  "CMakeFiles/value_normalizer_test.dir/value_normalizer_test.cc.o"
  "CMakeFiles/value_normalizer_test.dir/value_normalizer_test.cc.o.d"
  "value_normalizer_test"
  "value_normalizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_normalizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
