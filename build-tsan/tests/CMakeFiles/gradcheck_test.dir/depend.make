# Empty dependencies file for gradcheck_test.
# This may be replaced when dependencies are built.
