file(REMOVE_RECURSE
  "CMakeFiles/gradcheck_test.dir/gradcheck_test.cc.o"
  "CMakeFiles/gradcheck_test.dir/gradcheck_test.cc.o.d"
  "gradcheck_test"
  "gradcheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
