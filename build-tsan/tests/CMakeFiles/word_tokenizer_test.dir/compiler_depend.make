# Empty compiler generated dependencies file for word_tokenizer_test.
# This may be replaced when dependencies are built.
