file(REMOVE_RECURSE
  "CMakeFiles/word_tokenizer_test.dir/word_tokenizer_test.cc.o"
  "CMakeFiles/word_tokenizer_test.dir/word_tokenizer_test.cc.o.d"
  "word_tokenizer_test"
  "word_tokenizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_tokenizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
