file(REMOVE_RECURSE
  "CMakeFiles/rng_test.dir/rng_test.cc.o"
  "CMakeFiles/rng_test.dir/rng_test.cc.o.d"
  "rng_test"
  "rng_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
