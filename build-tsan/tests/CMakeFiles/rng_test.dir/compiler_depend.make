# Empty compiler generated dependencies file for rng_test.
# This may be replaced when dependencies are built.
