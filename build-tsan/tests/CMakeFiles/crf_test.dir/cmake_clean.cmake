file(REMOVE_RECURSE
  "CMakeFiles/crf_test.dir/crf_test.cc.o"
  "CMakeFiles/crf_test.dir/crf_test.cc.o.d"
  "crf_test"
  "crf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
