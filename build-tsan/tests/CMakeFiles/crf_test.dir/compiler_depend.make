# Empty compiler generated dependencies file for crf_test.
# This may be replaced when dependencies are built.
