file(REMOVE_RECURSE
  "CMakeFiles/bpe_test.dir/bpe_test.cc.o"
  "CMakeFiles/bpe_test.dir/bpe_test.cc.o.d"
  "bpe_test"
  "bpe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
