# Empty dependencies file for bpe_test.
# This may be replaced when dependencies are built.
