file(REMOVE_RECURSE
  "CMakeFiles/extractor_test.dir/extractor_test.cc.o"
  "CMakeFiles/extractor_test.dir/extractor_test.cc.o.d"
  "extractor_test"
  "extractor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extractor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
