# Empty compiler generated dependencies file for alignment_test.
# This may be replaced when dependencies are built.
