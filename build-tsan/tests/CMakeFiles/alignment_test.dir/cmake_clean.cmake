file(REMOVE_RECURSE
  "CMakeFiles/alignment_test.dir/alignment_test.cc.o"
  "CMakeFiles/alignment_test.dir/alignment_test.cc.o.d"
  "alignment_test"
  "alignment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
