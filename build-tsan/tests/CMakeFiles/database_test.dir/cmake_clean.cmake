file(REMOVE_RECURSE
  "CMakeFiles/database_test.dir/database_test.cc.o"
  "CMakeFiles/database_test.dir/database_test.cc.o.d"
  "database_test"
  "database_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
