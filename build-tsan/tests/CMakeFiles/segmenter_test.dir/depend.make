# Empty dependencies file for segmenter_test.
# This may be replaced when dependencies are built.
