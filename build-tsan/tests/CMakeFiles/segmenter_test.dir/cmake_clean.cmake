file(REMOVE_RECURSE
  "CMakeFiles/segmenter_test.dir/segmenter_test.cc.o"
  "CMakeFiles/segmenter_test.dir/segmenter_test.cc.o.d"
  "segmenter_test"
  "segmenter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segmenter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
