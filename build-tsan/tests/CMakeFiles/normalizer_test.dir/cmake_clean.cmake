file(REMOVE_RECURSE
  "CMakeFiles/normalizer_test.dir/normalizer_test.cc.o"
  "CMakeFiles/normalizer_test.dir/normalizer_test.cc.o.d"
  "normalizer_test"
  "normalizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/normalizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
