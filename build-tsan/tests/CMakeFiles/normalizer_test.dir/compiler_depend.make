# Empty compiler generated dependencies file for normalizer_test.
# This may be replaced when dependencies are built.
