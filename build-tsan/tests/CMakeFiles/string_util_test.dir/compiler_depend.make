# Empty compiler generated dependencies file for string_util_test.
# This may be replaced when dependencies are built.
