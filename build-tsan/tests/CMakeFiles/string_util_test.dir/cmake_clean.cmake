file(REMOVE_RECURSE
  "CMakeFiles/string_util_test.dir/string_util_test.cc.o"
  "CMakeFiles/string_util_test.dir/string_util_test.cc.o.d"
  "string_util_test"
  "string_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
