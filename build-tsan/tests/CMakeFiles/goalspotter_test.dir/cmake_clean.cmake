file(REMOVE_RECURSE
  "CMakeFiles/goalspotter_test.dir/goalspotter_test.cc.o"
  "CMakeFiles/goalspotter_test.dir/goalspotter_test.cc.o.d"
  "goalspotter_test"
  "goalspotter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalspotter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
