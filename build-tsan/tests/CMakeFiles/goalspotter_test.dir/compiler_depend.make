# Empty compiler generated dependencies file for goalspotter_test.
# This may be replaced when dependencies are built.
