# Empty compiler generated dependencies file for harness_path_test.
# This may be replaced when dependencies are built.
