file(REMOVE_RECURSE
  "CMakeFiles/harness_path_test.dir/harness_path_test.cc.o"
  "CMakeFiles/harness_path_test.dir/harness_path_test.cc.o.d"
  "harness_path_test"
  "harness_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
