file(REMOVE_RECURSE
  "CMakeFiles/weak_labeler_test.dir/weak_labeler_test.cc.o"
  "CMakeFiles/weak_labeler_test.dir/weak_labeler_test.cc.o.d"
  "weak_labeler_test"
  "weak_labeler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weak_labeler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
