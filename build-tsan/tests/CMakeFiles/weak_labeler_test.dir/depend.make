# Empty dependencies file for weak_labeler_test.
# This may be replaced when dependencies are built.
