# Empty compiler generated dependencies file for status_test.
# This may be replaced when dependencies are built.
