file(REMOVE_RECURSE
  "CMakeFiles/status_test.dir/status_test.cc.o"
  "CMakeFiles/status_test.dir/status_test.cc.o.d"
  "status_test"
  "status_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/status_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
