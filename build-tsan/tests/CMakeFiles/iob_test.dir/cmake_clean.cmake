file(REMOVE_RECURSE
  "CMakeFiles/iob_test.dir/iob_test.cc.o"
  "CMakeFiles/iob_test.dir/iob_test.cc.o.d"
  "iob_test"
  "iob_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iob_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
