# Empty dependencies file for iob_test.
# This may be replaced when dependencies are built.
