# Empty compiler generated dependencies file for goalex_values.
# This may be replaced when dependencies are built.
