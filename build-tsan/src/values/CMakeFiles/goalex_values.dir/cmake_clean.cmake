file(REMOVE_RECURSE
  "CMakeFiles/goalex_values.dir/value_normalizer.cc.o"
  "CMakeFiles/goalex_values.dir/value_normalizer.cc.o.d"
  "libgoalex_values.a"
  "libgoalex_values.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalex_values.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
