file(REMOVE_RECURSE
  "libgoalex_values.a"
)
