file(REMOVE_RECURSE
  "CMakeFiles/goalex_eval.dir/metrics.cc.o"
  "CMakeFiles/goalex_eval.dir/metrics.cc.o.d"
  "CMakeFiles/goalex_eval.dir/table.cc.o"
  "CMakeFiles/goalex_eval.dir/table.cc.o.d"
  "libgoalex_eval.a"
  "libgoalex_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalex_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
