# Empty dependencies file for goalex_eval.
# This may be replaced when dependencies are built.
