file(REMOVE_RECURSE
  "libgoalex_eval.a"
)
