# Empty compiler generated dependencies file for goalex_data.
# This may be replaced when dependencies are built.
