
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/goalex_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/goalex_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/data/CMakeFiles/goalex_data.dir/generator.cc.o" "gcc" "src/data/CMakeFiles/goalex_data.dir/generator.cc.o.d"
  "/root/repo/src/data/report.cc" "src/data/CMakeFiles/goalex_data.dir/report.cc.o" "gcc" "src/data/CMakeFiles/goalex_data.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/goalex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
