file(REMOVE_RECURSE
  "CMakeFiles/goalex_data.dir/dataset.cc.o"
  "CMakeFiles/goalex_data.dir/dataset.cc.o.d"
  "CMakeFiles/goalex_data.dir/generator.cc.o"
  "CMakeFiles/goalex_data.dir/generator.cc.o.d"
  "CMakeFiles/goalex_data.dir/report.cc.o"
  "CMakeFiles/goalex_data.dir/report.cc.o.d"
  "libgoalex_data.a"
  "libgoalex_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalex_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
