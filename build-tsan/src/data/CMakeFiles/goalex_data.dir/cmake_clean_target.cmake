file(REMOVE_RECURSE
  "libgoalex_data.a"
)
