# Empty compiler generated dependencies file for goalex_core.
# This may be replaced when dependencies are built.
