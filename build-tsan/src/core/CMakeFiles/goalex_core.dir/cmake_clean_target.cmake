file(REMOVE_RECURSE
  "libgoalex_core.a"
)
