file(REMOVE_RECURSE
  "CMakeFiles/goalex_core.dir/config.cc.o"
  "CMakeFiles/goalex_core.dir/config.cc.o.d"
  "CMakeFiles/goalex_core.dir/database.cc.o"
  "CMakeFiles/goalex_core.dir/database.cc.o.d"
  "CMakeFiles/goalex_core.dir/extractor.cc.o"
  "CMakeFiles/goalex_core.dir/extractor.cc.o.d"
  "libgoalex_core.a"
  "libgoalex_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalex_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
