# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("runtime")
subdirs("text")
subdirs("bpe")
subdirs("tensor")
subdirs("nn")
subdirs("labels")
subdirs("weaksup")
subdirs("crf")
subdirs("llm")
subdirs("data")
subdirs("eval")
subdirs("segment")
subdirs("values")
subdirs("goalspotter")
subdirs("core")
