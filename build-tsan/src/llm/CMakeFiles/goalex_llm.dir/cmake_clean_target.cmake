file(REMOVE_RECURSE
  "libgoalex_llm.a"
)
