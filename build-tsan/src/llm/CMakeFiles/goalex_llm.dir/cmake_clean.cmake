file(REMOVE_RECURSE
  "CMakeFiles/goalex_llm.dir/heuristics.cc.o"
  "CMakeFiles/goalex_llm.dir/heuristics.cc.o.d"
  "CMakeFiles/goalex_llm.dir/llm_extractor.cc.o"
  "CMakeFiles/goalex_llm.dir/llm_extractor.cc.o.d"
  "CMakeFiles/goalex_llm.dir/prompt.cc.o"
  "CMakeFiles/goalex_llm.dir/prompt.cc.o.d"
  "CMakeFiles/goalex_llm.dir/sim_llm.cc.o"
  "CMakeFiles/goalex_llm.dir/sim_llm.cc.o.d"
  "libgoalex_llm.a"
  "libgoalex_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalex_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
