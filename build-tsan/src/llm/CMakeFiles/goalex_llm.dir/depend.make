# Empty dependencies file for goalex_llm.
# This may be replaced when dependencies are built.
