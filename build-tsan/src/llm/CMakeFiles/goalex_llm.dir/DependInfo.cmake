
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/llm/heuristics.cc" "src/llm/CMakeFiles/goalex_llm.dir/heuristics.cc.o" "gcc" "src/llm/CMakeFiles/goalex_llm.dir/heuristics.cc.o.d"
  "/root/repo/src/llm/llm_extractor.cc" "src/llm/CMakeFiles/goalex_llm.dir/llm_extractor.cc.o" "gcc" "src/llm/CMakeFiles/goalex_llm.dir/llm_extractor.cc.o.d"
  "/root/repo/src/llm/prompt.cc" "src/llm/CMakeFiles/goalex_llm.dir/prompt.cc.o" "gcc" "src/llm/CMakeFiles/goalex_llm.dir/prompt.cc.o.d"
  "/root/repo/src/llm/sim_llm.cc" "src/llm/CMakeFiles/goalex_llm.dir/sim_llm.cc.o" "gcc" "src/llm/CMakeFiles/goalex_llm.dir/sim_llm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/goalex_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/data/CMakeFiles/goalex_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/text/CMakeFiles/goalex_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
