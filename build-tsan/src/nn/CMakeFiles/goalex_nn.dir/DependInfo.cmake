
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/adam.cc" "src/nn/CMakeFiles/goalex_nn.dir/adam.cc.o" "gcc" "src/nn/CMakeFiles/goalex_nn.dir/adam.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/nn/CMakeFiles/goalex_nn.dir/linear.cc.o" "gcc" "src/nn/CMakeFiles/goalex_nn.dir/linear.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/nn/CMakeFiles/goalex_nn.dir/serialize.cc.o" "gcc" "src/nn/CMakeFiles/goalex_nn.dir/serialize.cc.o.d"
  "/root/repo/src/nn/transformer.cc" "src/nn/CMakeFiles/goalex_nn.dir/transformer.cc.o" "gcc" "src/nn/CMakeFiles/goalex_nn.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/goalex_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tensor/CMakeFiles/goalex_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
