# Empty compiler generated dependencies file for goalex_nn.
# This may be replaced when dependencies are built.
