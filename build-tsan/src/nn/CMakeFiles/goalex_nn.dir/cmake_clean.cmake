file(REMOVE_RECURSE
  "CMakeFiles/goalex_nn.dir/adam.cc.o"
  "CMakeFiles/goalex_nn.dir/adam.cc.o.d"
  "CMakeFiles/goalex_nn.dir/linear.cc.o"
  "CMakeFiles/goalex_nn.dir/linear.cc.o.d"
  "CMakeFiles/goalex_nn.dir/serialize.cc.o"
  "CMakeFiles/goalex_nn.dir/serialize.cc.o.d"
  "CMakeFiles/goalex_nn.dir/transformer.cc.o"
  "CMakeFiles/goalex_nn.dir/transformer.cc.o.d"
  "libgoalex_nn.a"
  "libgoalex_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalex_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
