file(REMOVE_RECURSE
  "libgoalex_nn.a"
)
