file(REMOVE_RECURSE
  "CMakeFiles/goalex_segment.dir/segmenter.cc.o"
  "CMakeFiles/goalex_segment.dir/segmenter.cc.o.d"
  "libgoalex_segment.a"
  "libgoalex_segment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalex_segment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
