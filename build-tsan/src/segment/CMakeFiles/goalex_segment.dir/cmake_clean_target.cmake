file(REMOVE_RECURSE
  "libgoalex_segment.a"
)
