# Empty dependencies file for goalex_segment.
# This may be replaced when dependencies are built.
