file(REMOVE_RECURSE
  "CMakeFiles/goalex_labels.dir/iob.cc.o"
  "CMakeFiles/goalex_labels.dir/iob.cc.o.d"
  "libgoalex_labels.a"
  "libgoalex_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalex_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
