# Empty dependencies file for goalex_labels.
# This may be replaced when dependencies are built.
