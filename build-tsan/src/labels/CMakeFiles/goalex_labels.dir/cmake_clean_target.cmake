file(REMOVE_RECURSE
  "libgoalex_labels.a"
)
