# Empty dependencies file for goalex_weaksup.
# This may be replaced when dependencies are built.
