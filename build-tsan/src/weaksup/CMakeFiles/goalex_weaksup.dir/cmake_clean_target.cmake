file(REMOVE_RECURSE
  "libgoalex_weaksup.a"
)
