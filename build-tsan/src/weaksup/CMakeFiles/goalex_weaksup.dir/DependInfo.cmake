
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/weaksup/alignment.cc" "src/weaksup/CMakeFiles/goalex_weaksup.dir/alignment.cc.o" "gcc" "src/weaksup/CMakeFiles/goalex_weaksup.dir/alignment.cc.o.d"
  "/root/repo/src/weaksup/weak_labeler.cc" "src/weaksup/CMakeFiles/goalex_weaksup.dir/weak_labeler.cc.o" "gcc" "src/weaksup/CMakeFiles/goalex_weaksup.dir/weak_labeler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/bpe/CMakeFiles/goalex_bpe.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/goalex_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/labels/CMakeFiles/goalex_labels.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/runtime/CMakeFiles/goalex_runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/text/CMakeFiles/goalex_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
