file(REMOVE_RECURSE
  "CMakeFiles/goalex_weaksup.dir/alignment.cc.o"
  "CMakeFiles/goalex_weaksup.dir/alignment.cc.o.d"
  "CMakeFiles/goalex_weaksup.dir/weak_labeler.cc.o"
  "CMakeFiles/goalex_weaksup.dir/weak_labeler.cc.o.d"
  "libgoalex_weaksup.a"
  "libgoalex_weaksup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalex_weaksup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
