
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/normalizer.cc" "src/text/CMakeFiles/goalex_text.dir/normalizer.cc.o" "gcc" "src/text/CMakeFiles/goalex_text.dir/normalizer.cc.o.d"
  "/root/repo/src/text/sentence_splitter.cc" "src/text/CMakeFiles/goalex_text.dir/sentence_splitter.cc.o" "gcc" "src/text/CMakeFiles/goalex_text.dir/sentence_splitter.cc.o.d"
  "/root/repo/src/text/word_tokenizer.cc" "src/text/CMakeFiles/goalex_text.dir/word_tokenizer.cc.o" "gcc" "src/text/CMakeFiles/goalex_text.dir/word_tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/goalex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
