file(REMOVE_RECURSE
  "CMakeFiles/goalex_text.dir/normalizer.cc.o"
  "CMakeFiles/goalex_text.dir/normalizer.cc.o.d"
  "CMakeFiles/goalex_text.dir/sentence_splitter.cc.o"
  "CMakeFiles/goalex_text.dir/sentence_splitter.cc.o.d"
  "CMakeFiles/goalex_text.dir/word_tokenizer.cc.o"
  "CMakeFiles/goalex_text.dir/word_tokenizer.cc.o.d"
  "libgoalex_text.a"
  "libgoalex_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalex_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
