file(REMOVE_RECURSE
  "libgoalex_text.a"
)
