# Empty dependencies file for goalex_text.
# This may be replaced when dependencies are built.
