file(REMOVE_RECURSE
  "libgoalex_crf.a"
)
