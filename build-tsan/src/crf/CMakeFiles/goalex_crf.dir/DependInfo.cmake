
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crf/crf.cc" "src/crf/CMakeFiles/goalex_crf.dir/crf.cc.o" "gcc" "src/crf/CMakeFiles/goalex_crf.dir/crf.cc.o.d"
  "/root/repo/src/crf/features.cc" "src/crf/CMakeFiles/goalex_crf.dir/features.cc.o" "gcc" "src/crf/CMakeFiles/goalex_crf.dir/features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/goalex_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/labels/CMakeFiles/goalex_labels.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
