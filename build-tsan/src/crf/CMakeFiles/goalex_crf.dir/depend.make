# Empty dependencies file for goalex_crf.
# This may be replaced when dependencies are built.
