file(REMOVE_RECURSE
  "CMakeFiles/goalex_crf.dir/crf.cc.o"
  "CMakeFiles/goalex_crf.dir/crf.cc.o.d"
  "CMakeFiles/goalex_crf.dir/features.cc.o"
  "CMakeFiles/goalex_crf.dir/features.cc.o.d"
  "libgoalex_crf.a"
  "libgoalex_crf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalex_crf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
