# CMake generated Testfile for 
# Source directory: /root/repo/src/crf
# Build directory: /root/repo/build-tsan/src/crf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
