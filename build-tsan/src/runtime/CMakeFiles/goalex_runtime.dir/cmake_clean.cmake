file(REMOVE_RECURSE
  "CMakeFiles/goalex_runtime.dir/stats.cc.o"
  "CMakeFiles/goalex_runtime.dir/stats.cc.o.d"
  "CMakeFiles/goalex_runtime.dir/thread_pool.cc.o"
  "CMakeFiles/goalex_runtime.dir/thread_pool.cc.o.d"
  "libgoalex_runtime.a"
  "libgoalex_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalex_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
