file(REMOVE_RECURSE
  "libgoalex_runtime.a"
)
