# Empty dependencies file for goalex_runtime.
# This may be replaced when dependencies are built.
