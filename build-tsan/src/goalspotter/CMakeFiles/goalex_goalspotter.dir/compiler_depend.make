# Empty compiler generated dependencies file for goalex_goalspotter.
# This may be replaced when dependencies are built.
