file(REMOVE_RECURSE
  "libgoalex_goalspotter.a"
)
