file(REMOVE_RECURSE
  "CMakeFiles/goalex_goalspotter.dir/detector.cc.o"
  "CMakeFiles/goalex_goalspotter.dir/detector.cc.o.d"
  "CMakeFiles/goalex_goalspotter.dir/pipeline.cc.o"
  "CMakeFiles/goalex_goalspotter.dir/pipeline.cc.o.d"
  "libgoalex_goalspotter.a"
  "libgoalex_goalspotter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalex_goalspotter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
