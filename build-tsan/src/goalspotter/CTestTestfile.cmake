# CMake generated Testfile for 
# Source directory: /root/repo/src/goalspotter
# Build directory: /root/repo/build-tsan/src/goalspotter
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
