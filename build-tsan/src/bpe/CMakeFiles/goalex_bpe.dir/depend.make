# Empty dependencies file for goalex_bpe.
# This may be replaced when dependencies are built.
