file(REMOVE_RECURSE
  "libgoalex_bpe.a"
)
