file(REMOVE_RECURSE
  "CMakeFiles/goalex_bpe.dir/bpe_tokenizer.cc.o"
  "CMakeFiles/goalex_bpe.dir/bpe_tokenizer.cc.o.d"
  "CMakeFiles/goalex_bpe.dir/vocab.cc.o"
  "CMakeFiles/goalex_bpe.dir/vocab.cc.o.d"
  "libgoalex_bpe.a"
  "libgoalex_bpe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalex_bpe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
