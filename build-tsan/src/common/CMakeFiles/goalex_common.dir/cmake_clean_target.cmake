file(REMOVE_RECURSE
  "libgoalex_common.a"
)
