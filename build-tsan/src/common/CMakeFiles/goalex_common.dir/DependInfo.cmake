
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/check.cc" "src/common/CMakeFiles/goalex_common.dir/check.cc.o" "gcc" "src/common/CMakeFiles/goalex_common.dir/check.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/common/CMakeFiles/goalex_common.dir/rng.cc.o" "gcc" "src/common/CMakeFiles/goalex_common.dir/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/common/CMakeFiles/goalex_common.dir/status.cc.o" "gcc" "src/common/CMakeFiles/goalex_common.dir/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/common/CMakeFiles/goalex_common.dir/string_util.cc.o" "gcc" "src/common/CMakeFiles/goalex_common.dir/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
