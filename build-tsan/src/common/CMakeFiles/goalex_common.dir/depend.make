# Empty dependencies file for goalex_common.
# This may be replaced when dependencies are built.
