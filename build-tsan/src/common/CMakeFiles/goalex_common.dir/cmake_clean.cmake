file(REMOVE_RECURSE
  "CMakeFiles/goalex_common.dir/check.cc.o"
  "CMakeFiles/goalex_common.dir/check.cc.o.d"
  "CMakeFiles/goalex_common.dir/rng.cc.o"
  "CMakeFiles/goalex_common.dir/rng.cc.o.d"
  "CMakeFiles/goalex_common.dir/status.cc.o"
  "CMakeFiles/goalex_common.dir/status.cc.o.d"
  "CMakeFiles/goalex_common.dir/string_util.cc.o"
  "CMakeFiles/goalex_common.dir/string_util.cc.o.d"
  "libgoalex_common.a"
  "libgoalex_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalex_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
