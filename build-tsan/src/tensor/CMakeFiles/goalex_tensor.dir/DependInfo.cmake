
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/kernels.cc" "src/tensor/CMakeFiles/goalex_tensor.dir/kernels.cc.o" "gcc" "src/tensor/CMakeFiles/goalex_tensor.dir/kernels.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/tensor/CMakeFiles/goalex_tensor.dir/ops.cc.o" "gcc" "src/tensor/CMakeFiles/goalex_tensor.dir/ops.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/tensor/CMakeFiles/goalex_tensor.dir/tensor.cc.o" "gcc" "src/tensor/CMakeFiles/goalex_tensor.dir/tensor.cc.o.d"
  "/root/repo/src/tensor/variable.cc" "src/tensor/CMakeFiles/goalex_tensor.dir/variable.cc.o" "gcc" "src/tensor/CMakeFiles/goalex_tensor.dir/variable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/goalex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
