# Empty dependencies file for goalex_tensor.
# This may be replaced when dependencies are built.
