file(REMOVE_RECURSE
  "libgoalex_tensor.a"
)
