file(REMOVE_RECURSE
  "CMakeFiles/goalex_tensor.dir/kernels.cc.o"
  "CMakeFiles/goalex_tensor.dir/kernels.cc.o.d"
  "CMakeFiles/goalex_tensor.dir/ops.cc.o"
  "CMakeFiles/goalex_tensor.dir/ops.cc.o.d"
  "CMakeFiles/goalex_tensor.dir/tensor.cc.o"
  "CMakeFiles/goalex_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/goalex_tensor.dir/variable.cc.o"
  "CMakeFiles/goalex_tensor.dir/variable.cc.o.d"
  "libgoalex_tensor.a"
  "libgoalex_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goalex_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
