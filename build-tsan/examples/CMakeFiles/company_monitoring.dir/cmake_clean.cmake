file(REMOVE_RECURSE
  "CMakeFiles/company_monitoring.dir/company_monitoring.cpp.o"
  "CMakeFiles/company_monitoring.dir/company_monitoring.cpp.o.d"
  "company_monitoring"
  "company_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/company_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
