# Empty compiler generated dependencies file for company_monitoring.
# This may be replaced when dependencies are built.
