# Empty dependencies file for report_analysis.
# This may be replaced when dependencies are built.
