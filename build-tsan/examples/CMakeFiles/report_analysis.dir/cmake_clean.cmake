file(REMOVE_RECURSE
  "CMakeFiles/report_analysis.dir/report_analysis.cpp.o"
  "CMakeFiles/report_analysis.dir/report_analysis.cpp.o.d"
  "report_analysis"
  "report_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
