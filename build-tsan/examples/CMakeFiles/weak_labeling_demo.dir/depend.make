# Empty dependencies file for weak_labeling_demo.
# This may be replaced when dependencies are built.
