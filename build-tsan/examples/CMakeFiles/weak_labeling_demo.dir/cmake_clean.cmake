file(REMOVE_RECURSE
  "CMakeFiles/weak_labeling_demo.dir/weak_labeling_demo.cpp.o"
  "CMakeFiles/weak_labeling_demo.dir/weak_labeling_demo.cpp.o.d"
  "weak_labeling_demo"
  "weak_labeling_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weak_labeling_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
